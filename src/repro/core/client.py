"""The measurement client (Figure 1, "measurement client" box).

Drives the Super Proxy exactly as the paper's client does:

* **DoH measurement** — HTTP CONNECT to ``<provider domain>:443``
  through a chosen exit node, then a TLS 1.3 handshake and one RFC 8484
  GET *through the tunnel*.  Records T_A..T_D and the BrightData
  headers; Equations 6–8 do the rest.
* **Do53 measurement** — absolute-form GET of a fresh
  ``http://<UUID>.a.com/`` through the same exit node; the Do53 time is
  the ``dns`` header value.

Unique UUID-style subdomains guarantee a cache miss at every layer, so
both measurements capture resolution lower bounds (§3.1).
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.core.timeline import Do53Raw, DohRaw
from repro.dns.message import Rcode
from repro.doh.client import doh_query_on_stream
from repro.doh.provider import ProviderConfig
from repro.http.message import HeaderBag, HttpRequest, HttpResponse
from repro.netsim.host import Host
from repro.netsim.sockets import (
    ConnectionClosed,
    ConnectionRefused,
    SocketTimeout,
)
from repro.proxy.headers import TimelineHeaders
from repro.proxy.superproxy import PROXY_PORT, SuperProxy
from repro.tls.handshake import TlsVersion, client_handshake
from repro.tls.session import TlsConnection

__all__ = ["MeasurementClient"]

_MEASUREMENT_TIMEOUT_MS = 30000.0


class MeasurementClient:
    """Issues proxied DoH and Do53 measurements from a client machine."""

    def __init__(
        self,
        host: Host,
        rng: random.Random,
        measurement_domain: str = "a.com",
        tls_version: str = TlsVersion.TLS13,
        name_tag: str = "",
        recorder=None,
    ) -> None:
        self.host = host
        self.rng = rng
        self.measurement_domain = measurement_domain
        self.tls_version = tls_version
        #: Optional label baked into every fresh name.  Sharded campaign
        #: executions tag each shard's client so query names are unique
        #: across shards by construction, not just by random bits.
        self.name_tag = name_tag
        #: Optional :class:`repro.obs.TraceRecorder`.  Recording reads
        #: the finished raw record and already-observed timestamps only;
        #: it never touches ``self.rng`` or the simulator.
        self.recorder = recorder
        self._uuid_counter = 0

    # -- unique names -----------------------------------------------------

    def fresh_name(self) -> str:
        """A unique subdomain, one per query, to defeat caching."""
        self._uuid_counter += 1
        return "{}u{:08d}-{:08x}.{}".format(
            self.name_tag,
            self._uuid_counter,
            self.rng.getrandbits(32),
            self.measurement_domain,
        )

    # -- plumbing ------------------------------------------------------------

    def _proxy_headers(
        self,
        country: str,
        node_id: Optional[str],
        session: Optional[str],
    ) -> HeaderBag:
        headers = HeaderBag()
        headers.set("X-BD-Country", country)
        if node_id is not None:
            headers.set("X-BD-Node", node_id)
        if session is not None:
            headers.set("X-BD-Session", session)
        return headers

    # -- observability -----------------------------------------------------

    def _record_doh(self, raw: DohRaw, t_hs: Optional[float] = None) -> DohRaw:
        if self.recorder is not None:
            self.recorder.record_doh(raw, t_handshake_ms=t_hs)
        return raw

    def _record_do53(self, raw: Do53Raw) -> Do53Raw:
        if self.recorder is not None:
            self.recorder.record_do53(raw)
        return raw

    # -- DoH ---------------------------------------------------------------

    def measure_doh(
        self,
        super_proxy: SuperProxy,
        provider: ProviderConfig,
        country: str,
        node_id: Optional[str] = None,
        session: Optional[str] = None,
        run_index: int = 0,
    ):
        """One proxied DoH measurement; generator → :class:`DohRaw`."""
        sim = self.host.network.sim
        qname = self.fresh_name()
        conn = yield from self.host.open_tcp(super_proxy.host.ip, PROXY_PORT)
        connect_request = HttpRequest(
            method="CONNECT",
            target="{}:443".format(provider.domain),
            headers=self._proxy_headers(country, node_id, session),
        )
        t_a = sim.now
        conn.send(connect_request, connect_request.wire_size())
        try:
            response = yield conn.recv(timeout_ms=_MEASUREMENT_TIMEOUT_MS)
        except (ConnectionClosed, SocketTimeout) as exc:
            conn.close()
            return self._record_doh(self._doh_failure(
                provider, country, node_id, qname, t_a, sim.now, str(exc),
                run_index,
            ))
        t_b = sim.now
        if not isinstance(response, HttpResponse) or not response.ok:
            error = "tunnel failed"
            headers = TimelineHeaders(tun={}, box={})
            exit_ip = ""
            actual_node = node_id or ""
            if isinstance(response, HttpResponse):
                error = response.headers.get("X-BD-Error", "tunnel failed")
                headers = TimelineHeaders.from_headers(response.headers)
                exit_ip = response.headers.get("X-BD-Exit-Ip", "")
                actual_node = response.headers.get("X-BD-Node-Id", actual_node)
            conn.close()
            return self._record_doh(DohRaw(
                node_id=actual_node,
                exit_ip=exit_ip,
                claimed_country=country,
                provider=provider.name,
                qname=qname,
                t_a=t_a,
                t_b=t_b,
                t_c=t_b,
                t_d=t_b,
                headers=headers,
                tls_version=self.tls_version,
                run_index=run_index,
                success=False,
                error=error,
            ))
        headers = TimelineHeaders.from_headers(response.headers)
        exit_ip = response.headers.get("X-BD-Exit-Ip", "")
        actual_node = response.headers.get("X-BD-Node-Id", node_id or "")

        t_c = sim.now
        t_hs: Optional[float] = None
        try:
            handshake = yield from client_handshake(
                conn,
                sni=provider.domain,
                version=self.tls_version,
                crypto_ms=0.5,
            )
            t_hs = sim.now
            stream = TlsConnection(conn, handshake, is_client=True)
            answer, _elapsed = yield from doh_query_on_stream(
                stream,
                provider.domain,
                qname,
                timeout_ms=_MEASUREMENT_TIMEOUT_MS,
            )
        except Exception as exc:
            conn.close()
            return self._record_doh(self._doh_failure(
                provider, country, actual_node, qname, t_a, sim.now,
                "doh exchange failed: {}".format(exc), run_index,
                exit_ip=exit_ip, headers=headers, t_b=t_b, t_c=t_c,
            ), t_hs)
        t_d = sim.now
        conn.close()
        if answer.rcode != Rcode.NOERROR:
            # The transport worked but resolution did not (e.g. a
            # SERVFAIL episode at the provider): a failed measurement,
            # not a latency sample.
            return self._record_doh(self._doh_failure(
                provider, country, actual_node, qname, t_a, t_d,
                "provider answered {}".format(Rcode.to_text(answer.rcode)),
                run_index,
                exit_ip=exit_ip, headers=headers, t_b=t_b, t_c=t_c,
            ), t_hs)
        return self._record_doh(DohRaw(
            node_id=actual_node,
            exit_ip=exit_ip,
            claimed_country=country,
            provider=provider.name,
            qname=qname,
            t_a=t_a,
            t_b=t_b,
            t_c=t_c,
            t_d=t_d,
            headers=headers,
            tls_version=self.tls_version,
            run_index=run_index,
        ), t_hs)

    def _doh_failure(
        self,
        provider: ProviderConfig,
        country: str,
        node_id: Optional[str],
        qname: str,
        t_a: float,
        now: float,
        error: str,
        run_index: int,
        exit_ip: str = "",
        headers: Optional[TimelineHeaders] = None,
        t_b: Optional[float] = None,
        t_c: Optional[float] = None,
    ) -> DohRaw:
        return DohRaw(
            node_id=node_id or "",
            exit_ip=exit_ip,
            claimed_country=country,
            provider=provider.name,
            qname=qname,
            t_a=t_a,
            t_b=t_b if t_b is not None else now,
            t_c=t_c if t_c is not None else now,
            t_d=now,
            headers=headers or TimelineHeaders(tun={}, box={}),
            tls_version=self.tls_version,
            run_index=run_index,
            success=False,
            error=error,
        )

    # -- Do53 ------------------------------------------------------------------

    def measure_do53(
        self,
        super_proxy: SuperProxy,
        country: str,
        node_id: Optional[str] = None,
        session: Optional[str] = None,
        run_index: int = 0,
    ):
        """One proxied Do53 measurement; generator → :class:`Do53Raw`."""
        qname = self.fresh_name()
        conn = yield from self.host.open_tcp(super_proxy.host.ip, PROXY_PORT)
        request = HttpRequest(
            method="GET",
            target="http://{}/".format(qname),
            headers=self._proxy_headers(country, node_id, session),
        )
        conn.send(request, request.wire_size())
        try:
            response = yield conn.recv(timeout_ms=_MEASUREMENT_TIMEOUT_MS)
        except (ConnectionClosed, SocketTimeout) as exc:
            conn.close()
            return self._record_do53(Do53Raw(
                node_id=node_id or "",
                exit_ip="",
                claimed_country=country,
                qname=qname,
                dns_ms=0.0,
                headers=TimelineHeaders(tun={}, box={}),
                resolved_at="unknown",
                run_index=run_index,
                success=False,
                error=str(exc),
            ))
        conn.close()
        if not isinstance(response, HttpResponse) or not response.ok:
            error = "fetch failed"
            if isinstance(response, HttpResponse):
                error = response.headers.get("X-BD-Error", error)
            return self._record_do53(Do53Raw(
                node_id=node_id or "",
                exit_ip="",
                claimed_country=country,
                qname=qname,
                dns_ms=0.0,
                headers=TimelineHeaders(tun={}, box={}),
                resolved_at="unknown",
                run_index=run_index,
                success=False,
                error=error,
            ))
        headers = TimelineHeaders.from_headers(response.headers)
        return self._record_do53(Do53Raw(
            node_id=response.headers.get("X-BD-Node-Id", node_id or ""),
            exit_ip=response.headers.get("X-BD-Exit-Ip", ""),
            claimed_country=country,
            qname=qname,
            dns_ms=headers.dns_ms,
            headers=headers,
            resolved_at=response.headers.get("X-BD-DNS-At", "exit"),
            run_index=run_index,
        ))

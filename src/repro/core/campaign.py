"""The full measurement campaign (§3.1, §5.1).

For every exit node in the fleet, the client performs — per run — four
DoH measurements (one per provider) and one Do53 measurement, all
through the same node (session stickiness), with fresh UUID subdomains
throughout.  Two runs per client, as in the paper.

Afterwards:

* data points whose BrightData country label disagrees with the
  Maxmind lookup of the exit /24 are discarded (§3.5),
* Do53 samples from the 11 super-proxy countries are marked invalid
  and replaced by RIPE Atlas measurements (§3.5),
* DoH queries are joined against the authoritative server's log to
  identify the serving PoP (§5.2).

Measurements for different clients run concurrently in simulation
(the real campaign spanned April–May 2021), batched to bound memory.
"""

from __future__ import annotations

import gc
import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.atlas.api import AtlasClient
from repro.atlas.probes import build_probes
from repro.core.client import MeasurementClient
from repro.core.timeline import Do53Raw, DohRaw
from repro.core.validation import filter_mismatched, mismatch_rate
from repro.core.world import World
from repro.dataset.builder import DatasetBuilder
from repro.dataset.store import Dataset
from repro.doh.provider import PROVIDER_CONFIGS
from repro.faults.plan import WORKER_CRASH_EXIT
from repro.geo.countries import COUNTRIES, SUPER_PROXY_COUNTRIES
from repro.netsim.engine import SimulationError
from repro.obs import Observability
from repro.obs.collect import collect_world_metrics
from repro.obs.trace import TraceRecorder
from repro.proxy.exitnode import ExitNode

__all__ = ["AtlasRawSample", "Campaign", "CampaignResult", "NodeFailure"]

#: One successful Atlas resolution in raw, mergeable form:
#: ``(probe_id, country, result_index, time_ms)``.
AtlasRawSample = Tuple[str, str, int, float]


@dataclass(frozen=True)
class NodeFailure:
    """A node whose measurement task failed on every attempt.

    The paper's campaign saw these constantly (peers churning away
    mid-session); they are data, not crashes — the campaign records
    them and keeps going.
    """

    node_id: str
    error: str
    attempts: int


@dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    dataset: Dataset
    raw_doh: List[DohRaw] = field(default_factory=list)
    raw_do53: List[Do53Raw] = field(default_factory=list)
    discarded_doh: int = 0
    discarded_do53: int = 0
    #: Nodes whose task failed every attempt (exceptions, not failed
    #: samples — those stay in raw_doh/raw_do53 with success=False).
    failures: List[NodeFailure] = field(default_factory=list)
    #: Observability artefacts (None when the campaign ran unobserved):
    #: a :meth:`MetricsRegistry.snapshot` dict and the populated
    #: :class:`TraceRecorder`.  They live outside the dataset on
    #: purpose — dataset bytes never depend on observability.
    metrics: Optional[Dict] = None
    traces: Optional[TraceRecorder] = None

    @property
    def discard_rate(self) -> float:
        total = (
            len(self.raw_doh) + len(self.raw_do53)
            + self.discarded_doh + self.discarded_do53
        )
        discarded = self.discarded_doh + self.discarded_do53
        return discarded / total if total else 0.0


class Campaign:
    """Runs the full data collection over a built world."""

    def __init__(
        self,
        world: World,
        atlas_probes_per_country: int = 20,
        atlas_repetitions: int = 2,
        client_seed: Optional[int] = None,
        client_name_tag: str = "",
        max_node_retries: int = 1,
        obs: Optional[Observability] = None,
        provider_filter: Optional[Sequence[str]] = None,
        run_index_offset: int = 0,
        include_do53: bool = True,
        shard_index: Optional[int] = None,
    ) -> None:
        """*client_seed*/*client_name_tag* isolate the measurement
        client's RNG stream and query-name namespace; the sharded
        executor derives both from the shard index so shards diverge
        deterministically (``repro.parallel``).  The defaults reproduce
        the single-process campaign exactly.

        *max_node_retries* bounds how often a node task that raised is
        retried with a fresh session (BrightData-style peer rotation)
        before it becomes a :class:`NodeFailure` record.

        *obs* turns on the observability layer: the client records a
        phase trace per measurement and the campaign scrapes metrics.
        Observation is read-only — the produced records and dataset are
        byte-identical with or without it.

        *provider_filter*/*run_index_offset*/*include_do53* exist for
        incremental campaigns (``repro ckpt extend``): the first
        restricts the per-node plan to a subset of the world's
        providers, the second shifts the recorded ``run_index`` so
        delta runs merge after the base checkpoint's runs, and the
        third skips the per-run Do53 measurement (a provider-only
        delta must not duplicate the base campaign's Do53 samples).
        *shard_index* identifies this campaign to the ``worker_crash``
        fault (None for the serial campaign).
        """
        self.world = world
        self.atlas_probes_per_country = atlas_probes_per_country
        self.atlas_repetitions = atlas_repetitions
        self.max_node_retries = max(0, max_node_retries)
        self.obs = obs
        #: NodeFailure records from the most recent measure() call.
        self.failures: List[NodeFailure] = []
        if client_seed is None:
            client_seed = world.config.seed + 1
        self.client = MeasurementClient(
            world.client_host,
            random.Random(client_seed),
            measurement_domain=world.config.measurement_domain,
            tls_version=world.config.tls_version,
            name_tag=client_name_tag,
            recorder=obs.trace if obs is not None else None,
        )
        # Hot-path lookups hoisted out of the 22k-iteration node loop:
        # the provider list is per-config constant and the super-proxy
        # choice only depends on the (per-country) profile location.
        provider_names = list(world.config.providers)
        if provider_filter is not None:
            wanted = set(provider_filter)
            unknown = wanted - set(provider_names)
            if unknown:
                raise ValueError(
                    "provider_filter names providers not in the world: "
                    "{}".format(sorted(unknown))
                )
            provider_names = [
                name for name in provider_names if name in wanted
            ]
        self._providers = [
            PROVIDER_CONFIGS[name] for name in provider_names
        ]
        self.run_index_offset = run_index_offset
        self.include_do53 = include_do53
        self.shard_index = shard_index
        self._super_proxy_by_country: Dict[str, object] = {}

    # -- per-node measurement plan -------------------------------------------

    def _super_proxy_for(self, node: ExitNode):
        country = node.claimed_country
        cached = self._super_proxy_by_country.get(country)
        if cached is not None:
            return cached
        profile = COUNTRIES.get(country)
        if profile is None:
            # No profile to anchor on: fall back to the node's own
            # location (not cacheable per country).
            return self.world.proxy_network.nearest_super_proxy(
                node.host.location
            )
        super_proxy = self.world.proxy_network.nearest_super_proxy(
            profile.location
        )
        self._super_proxy_by_country[country] = super_proxy
        return super_proxy

    def _node_task(self, node: ExitNode, sink_doh: List[DohRaw],
                   sink_do53: List[Do53Raw]):
        world = self.world
        country = node.claimed_country
        super_proxy = self._super_proxy_for(node)
        providers = self._providers
        offset = self.run_index_offset
        for run_index in range(world.config.runs_per_client):
            for provider in providers:
                raw = yield from self.client.measure_doh(
                    super_proxy,
                    provider,
                    country,
                    node_id=node.node_id,
                    run_index=run_index + offset,
                )
                sink_doh.append(raw)
            if not self.include_do53:
                continue
            raw53 = yield from self.client.measure_do53(
                super_proxy,
                country,
                node_id=node.node_id,
                run_index=run_index + offset,
            )
            sink_do53.append(raw53)

    def _guarded_node_task(self, node: ExitNode, sink_doh: List[DohRaw],
                           sink_do53: List[Do53Raw]):
        """Run the node's plan, isolating failures into records.

        Each attempt buffers its samples locally and only commits on
        success, so a half-measured attempt never pollutes the sinks;
        a retry is a fresh session with fresh query names (the client's
        RNG stream simply continues, which keeps every draw
        deterministic).  :class:`SimulationError` still propagates — a
        broken simulation must never masquerade as a node failure.
        """
        attempts = 1 + self.max_node_retries
        last_error = ""
        for _attempt in range(attempts):
            local_doh: List[DohRaw] = []
            local_do53: List[Do53Raw] = []
            try:
                yield from self._node_task(node, local_doh, local_do53)
            except SimulationError:
                raise
            except Exception as exc:
                last_error = str(exc) or exc.__class__.__name__
                if self.obs is not None:
                    self.obs.metrics.inc("campaign.task_errors")
                continue
            sink_doh.extend(local_doh)
            sink_do53.extend(local_do53)
            if self.obs is not None:
                self.obs.metrics.inc("campaign.nodes_measured")
            return
        if self.obs is not None:
            self.obs.metrics.inc("campaign.node_failures")
        self.failures.append(
            NodeFailure(
                node_id=node.node_id, error=last_error, attempts=attempts
            )
        )

    # -- execution ------------------------------------------------------------

    def measure(
        self,
        nodes: Optional[Sequence[ExitNode]] = None,
        progress=None,
        checkpoint=None,
    ) -> Tuple[List[DohRaw], List[Do53Raw]]:
        """Run the batched measurement phase only; returns raw records.

        This is the half of :meth:`run` the sharded executor runs in
        worker processes — everything after it (validation, dataset
        build, Atlas) happens on merged records in the parent.

        *checkpoint*, if given, is a
        :class:`~repro.ckpt.checkpoint.MeasureCheckpoint`: every
        committed batch is journalled (samples to the ledger, world
        state to the state blob), and a later call with the same
        checkpoint replays the journal, restores the world, and
        measures only the remaining batches — producing byte-identical
        records (see docs/checkpointing.md).
        """
        world = self.world
        sim = world.sim
        if nodes is None:
            nodes = world.nodes()
        raw_doh: List[DohRaw] = []
        raw_do53: List[Do53Raw] = []
        self.failures = []

        resume_batches = 0
        if checkpoint is not None:
            resumed = checkpoint.prepare(self)
            resume_batches = resumed.batches_done
            raw_doh.extend(resumed.doh)
            raw_do53.extend(resumed.do53)
            self.failures.extend(resumed.failures)
            if self.obs is not None:
                metrics = self.obs.metrics
                prefix = "ckpt.{}.".format(checkpoint.role)
                # Gauges, not counters: resume bookkeeping must never
                # break metrics byte-identity between a resumed and an
                # uninterrupted run (determinism checks ignore gauges).
                metrics.set_gauge(prefix + "batches_replayed",
                                  float(resume_batches))
                metrics.set_gauge(prefix + "samples_replayed",
                                  float(resumed.samples_replayed))

        batch_size = max(1, world.config.batch_size)
        # The measurement loop allocates millions of short-lived objects
        # (events, messages, generator frames), many in reference cycles
        # (first_of relays, process callbacks), which makes the cyclic
        # collector fire over a thousand times per small campaign.
        # Switch to deterministic, count-based pacing instead: collect
        # the young generation once per drained batch.  The pacing is a
        # pure function of the node order, never wall time, so results
        # are byte-identical with collection at any cadence; memory
        # stays bounded because each batch ends with an empty event
        # queue and one collection pass over that batch's garbage.
        injector = world.fault_injector
        num_batches = (len(nodes) + batch_size - 1) // batch_size
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            for batch_index in range(num_batches):
                start = batch_index * batch_size
                done_nodes = min(start + batch_size, len(nodes))
                if batch_index < resume_batches:
                    # Replayed from the ledger; the restored world state
                    # already reflects having measured this batch.
                    if progress is not None:
                        progress(done_nodes, len(nodes))
                    continue
                if injector is not None and injector.worker_crash_due(
                    self.shard_index, batch_index, resume_batches
                ):
                    # Preemption drill: die exactly like the OOM killer
                    # would — no cleanup, no commit of this batch.
                    os._exit(WORKER_CRASH_EXIT)
                batch = nodes[start:start + batch_size]
                doh_before = len(raw_doh)
                do53_before = len(raw_do53)
                failures_before = len(self.failures)
                processes = [
                    sim.spawn(
                        self._guarded_node_task(node, raw_doh, raw_do53),
                        name="measure-{}".format(node.node_id),
                    )
                    for node in batch
                ]
                sim.run()
                for process in processes:
                    if not process.triggered:
                        # A node task that never finished means the batch
                        # deadlocked (an event nobody will trigger).  This
                        # used to be silently ignored, losing measurements.
                        raise SimulationError(
                            "campaign process {!r} did not finish "
                            "(deadlock?)".format(process.name)
                        )
                    if not process.ok:
                        # Only SimulationError escapes the guard; per-node
                        # exceptions became NodeFailure records instead of
                        # aborting the whole batch.
                        raise process.exception  # type: ignore[misc]
                # The heap is drained between batches: drop per-channel
                # bookkeeping so memory (and GC pressure) stays bounded on
                # full-scale runs.
                world.network.forget_flow_state()
                if gc_was_enabled:
                    gc.collect(0)
                if checkpoint is not None:
                    checkpoint.commit_batch(
                        self,
                        batch_index,
                        raw_doh[doh_before:],
                        raw_do53[do53_before:],
                        self.failures[failures_before:],
                        force=batch_index == num_batches - 1,
                    )
                if progress is not None:
                    progress(done_nodes, len(nodes))
        finally:
            if gc_was_enabled:
                gc.enable()
        if checkpoint is not None:
            checkpoint.finish(self)
            if self.obs is not None:
                self.obs.metrics.set_gauge(
                    "ckpt.{}.batches_measured".format(checkpoint.role),
                    float(num_batches - resume_batches),
                )
        if self.obs is not None:
            self._observe_measurements(raw_doh, raw_do53)
        return raw_doh, raw_do53

    def _observe_measurements(
        self, raw_doh: List[DohRaw], raw_do53: List[Do53Raw]
    ) -> None:
        """Scrape metrics for a finished measurement phase.

        Totals use ``set_counter`` so calling this again (``run()``
        re-scrapes after Atlas) refreshes rather than double-counts;
        histograms are filled exactly once, here.
        """
        metrics = self.obs.metrics
        metrics.set_counter("campaign.raw_doh", len(raw_doh))
        metrics.set_counter("campaign.raw_do53", len(raw_do53))
        metrics.set_counter(
            "campaign.raw_doh_failed",
            sum(1 for raw in raw_doh if not raw.success),
        )
        metrics.set_counter(
            "campaign.raw_do53_failed",
            sum(1 for raw in raw_do53 if not raw.success),
        )
        for raw in raw_doh:
            if raw.success:
                metrics.observe("doh.tunnel_ms", raw.t_b - raw.t_a)
                metrics.observe("doh.exchange_ms", raw.t_d - raw.t_c)
        for raw in raw_do53:
            if raw.success:
                metrics.observe("do53.dns_ms", raw.dns_ms)
        collect_world_metrics(self.world, metrics)

    def run(
        self,
        nodes: Optional[Sequence[ExitNode]] = None,
        progress=None,
        checkpoint=None,
    ) -> CampaignResult:
        """Execute the campaign; returns the processed dataset.

        *progress*, if given, is called as ``progress(done, total)``
        after every batch (long full-scale runs print from it).
        *checkpoint* makes the measurement phase resumable (see
        :meth:`measure`); the post-measurement phases (validation,
        dataset build, Atlas) are recomputed deterministically from the
        replayed records and restored world on every resume.
        """
        world = self.world
        if nodes is None:
            nodes = world.nodes()
        raw_doh, raw_do53 = self.measure(nodes, progress, checkpoint)

        # -- Maxmind validation (discard label mismatches) -----------------
        kept_doh, dropped_doh = filter_mismatched(raw_doh, world.geolocation)
        kept_do53, dropped_do53 = filter_mismatched(raw_do53, world.geolocation)

        builder = DatasetBuilder(
            world.geolocation,
            min_clients_per_country=world.config.population.analyzed_threshold,
        )
        builder.ingest_auth_log(world.auth_server.query_log)

        measured_node_ids = set()
        for raw in kept_doh:
            if raw.node_id:
                measured_node_ids.add(raw.node_id)
        for raw in kept_do53:
            if raw.node_id:
                measured_node_ids.add(raw.node_id)
        node_by_id = {node.node_id: node for node in nodes}
        for node_id in sorted(measured_node_ids):
            node = node_by_id.get(node_id)
            if node is None:
                continue
            builder.add_client(node.node_id, node.ip, node.claimed_country)

        for raw in kept_doh:
            builder.add_doh(raw)
        for raw in kept_do53:
            builder.add_do53(raw)

        # -- RIPE Atlas supplement for the 11 super-proxy countries --------
        self._run_atlas(builder)

        metrics_snapshot = None
        traces = None
        if self.obs is not None:
            # Refresh world totals to cover the Atlas phase too.
            collect_world_metrics(world, self.obs.metrics)
            self.obs.metrics.set_counter("campaign.discarded_doh",
                                         len(dropped_doh))
            self.obs.metrics.set_counter("campaign.discarded_do53",
                                         len(dropped_do53))
            metrics_snapshot = self.obs.metrics.snapshot()
            traces = self.obs.trace

        return CampaignResult(
            dataset=builder.build(),
            raw_doh=kept_doh,
            raw_do53=kept_do53,
            discarded_doh=len(dropped_doh),
            discarded_do53=len(dropped_do53),
            failures=list(self.failures),
            metrics=metrics_snapshot,
            traces=traces,
        )

    def collect_atlas(self) -> List[AtlasRawSample]:
        """Run the RIPE Atlas supplement; returns raw samples.

        Returned tuples are plain data so a worker process can ship
        them back to the parent for merging (``repro.parallel``).
        """
        world = self.world
        samples: List[AtlasRawSample] = []
        if self.atlas_probes_per_country <= 0:
            return samples
        covered = set(world.population.infrastructure)
        target_countries = [
            code for code in SUPER_PROXY_COUNTRIES if code in covered
        ]
        probes = build_probes(
            network=world.network,
            rng=world.rng,
            allocator=world.allocator,
            infrastructure=world.population.infrastructure,
            countries=target_countries,
            probes_per_country=self.atlas_probes_per_country,
        )
        atlas = AtlasClient(world.sim, probes)
        for code in target_countries:
            results = world.run(
                atlas.measure_dns(
                    code,
                    self.client.fresh_name,
                    repetitions=self.atlas_repetitions,
                ),
                name="atlas-{}".format(code),
            )
            for index, result in enumerate(results):
                if result.success:
                    samples.append(
                        (result.probe_id, result.country, index,
                         result.time_ms)
                    )
        return samples

    def _run_atlas(self, builder: DatasetBuilder) -> None:
        for probe_id, country, index, time_ms in self.collect_atlas():
            builder.add_atlas_do53(probe_id, country, index, time_ms)

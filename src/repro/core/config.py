"""Single configuration object for the reproduction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.faults.plan import FaultPlan
from repro.netsim.latency import LatencyParams
from repro.proxy.population import PopulationConfig
from repro.tls.handshake import TlsVersion

__all__ = ["ReproConfig"]


@dataclass
class ReproConfig:
    """Everything needed to rebuild the simulated world and campaign.

    The default values reproduce the paper's setup: four public DoH
    providers measured from the full 22,052-node fleet, two runs per
    client, TLS 1.3, measurement domain ``a.com`` with its
    authoritative server and web server in the United States.
    """

    seed: int = 20210402  # the paper's collection started April 2021
    population: PopulationConfig = field(default_factory=PopulationConfig)
    latency: LatencyParams = field(default_factory=LatencyParams)
    providers: Tuple[str, ...] = ("cloudflare", "google", "nextdns", "quad9")
    tls_version: str = TlsVersion.TLS13
    #: Measurement domain the authors control (Figure 1).
    measurement_domain: str = "a.com"
    #: Runs per client (the paper conducts 2 runs of 5 requests each).
    runs_per_client: int = 2
    #: Maxmind database error rate (exercises the mismatch discard).
    geolocation_error_rate: float = 0.0
    #: Number of clients measured concurrently (simulation batching).
    batch_size: int = 400
    #: Deterministic fault schedule (None = healthy Internet).  Part of
    #: the config so it shards and pickles; see ``repro.faults``.
    faults: Optional[FaultPlan] = None

    @classmethod
    def small(cls, scale: float = 0.12, seed: int = 20210402) -> "ReproConfig":
        """A reduced-scale config for tests and quick benchmarks."""
        return cls(seed=seed, population=PopulationConfig(scale=scale))

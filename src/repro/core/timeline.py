"""Raw measurement records: the observables of Figure 2.

The methodology may use **only** what the real system could see: the
four client-side timestamps (T_A..T_D), the BrightData timing headers,
and response metadata.  Ground-truth quantities (true step timings)
live elsewhere — in the directly-controlled exit nodes of §4 — so the
validation is honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.proxy.headers import TimelineHeaders

__all__ = ["Do53Raw", "DohRaw"]


@dataclass(frozen=True, slots=True)
class DohRaw:
    """Observables of one proxied DoH measurement.

    Timestamps (simulated ms):

    * ``t_a`` — CONNECT sent to the Super Proxy,
    * ``t_b`` — 200 received (tunnel established),
    * ``t_c`` — ClientHello sent (TLS start),
    * ``t_d`` — DoH response received.
    """

    node_id: str
    exit_ip: str
    claimed_country: str
    provider: str
    qname: str
    t_a: float
    t_b: float
    t_c: float
    t_d: float
    headers: TimelineHeaders
    tls_version: str
    run_index: int = 0
    success: bool = True
    error: str = ""

    @property
    def tunnel_ms(self) -> float:
        """T_B − T_A."""
        return self.t_b - self.t_a

    @property
    def exchange_ms(self) -> float:
        """T_D − T_C."""
        return self.t_d - self.t_c


@dataclass(frozen=True, slots=True)
class Do53Raw:
    """Observables of one proxied Do53 measurement."""

    node_id: str
    exit_ip: str
    claimed_country: str
    qname: str
    dns_ms: float
    headers: TimelineHeaders
    resolved_at: str  # "exit" or "superproxy"
    run_index: int = 0
    success: bool = True
    error: str = ""

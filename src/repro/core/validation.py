"""Maxmind mismatch filtering (§3.5).

BrightData's country labels are not always right.  The paper
geolocates each exit node's /24 with Maxmind and discards data points
whose Maxmind country disagrees with the BrightData label — 0.88% of
their collection.  The same filter lives here.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple, TypeVar

from repro.geo.geolocate import GeolocationService

__all__ = ["filter_mismatched", "mismatch_rate"]

T = TypeVar("T")


def filter_mismatched(
    records: Iterable[T],
    geolocation: GeolocationService,
) -> Tuple[List[T], List[T]]:
    """Split *records* into (kept, discarded) by country agreement.

    Records must expose ``exit_ip`` and ``claimed_country``.  Records
    with no usable address are kept (they are failures handled
    elsewhere).
    """
    kept: List[T] = []
    discarded: List[T] = []
    for record in records:
        address = getattr(record, "exit_ip", "")
        claimed = getattr(record, "claimed_country", "")
        if not address:
            kept.append(record)
            continue
        located = geolocation.lookup_country(address)
        if located is not None and located != claimed:
            discarded.append(record)
        else:
            kept.append(record)
    return kept, discarded


def mismatch_rate(kept: List[T], discarded: List[T]) -> float:
    """Fraction of records discarded (paper: 0.88%)."""
    total = len(kept) + len(discarded)
    return len(discarded) / total if total else 0.0

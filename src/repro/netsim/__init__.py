"""Discrete-event network simulator used as the Internet substrate.

The paper ran its measurements over the real Internet through the
BrightData proxy network.  This package provides the synthetic
equivalent: an event-driven simulator (:mod:`repro.netsim.engine`), a
geography-aware latency model (:mod:`repro.netsim.latency`), hosts with
UDP/TCP socket APIs (:mod:`repro.netsim.host`,
:mod:`repro.netsim.sockets`) and the network fabric that moves messages
between them (:mod:`repro.netsim.network`).
"""

from repro.netsim.engine import Event, Process, Simulator, Timeout, first_of
from repro.netsim.host import Host, SiteProfile
from repro.netsim.latency import LatencyModel, LatencyParams
from repro.netsim.network import Network
from repro.netsim.sockets import (
    Datagram,
    ListenerClosed,
    TcpConnection,
    TcpListener,
    UdpSocket,
)

__all__ = [
    "Datagram",
    "Event",
    "Host",
    "LatencyModel",
    "LatencyParams",
    "ListenerClosed",
    "Network",
    "Process",
    "SiteProfile",
    "Simulator",
    "TcpConnection",
    "TcpListener",
    "Timeout",
    "UdpSocket",
    "first_of",
]

"""UDP and TCP socket primitives over the network fabric.

These are *message-granular* sockets: each :meth:`send` carries one
application message with an explicit wire size, and the fabric samples
a fresh one-way delay for it.  That granularity matches how the paper
reasons about its 22-step timeline (Figure 2): every arrow in that
figure is one message here.

TCP connections perform a real three-way handshake (SYN, SYN-ACK, then
data riding the ACK), record the handshake duration the way the
BrightData exit node reports it, and preserve in-order reliable
delivery with loss converted to retransmission delay.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Optional, Tuple

from repro.netsim.engine import Event
from repro.netsim.host import Host

__all__ = [
    "ConnectionClosed",
    "ConnectionRefused",
    "Datagram",
    "ListenerClosed",
    "SocketTimeout",
    "TcpConnection",
    "TcpListener",
    "UdpSocket",
    "open_tcp",
]

_SYN_BYTES = 60
_ACK_BYTES = 52
_FIN_BYTES = 52

_channel_counter = itertools.count(1)


class SocketTimeout(Exception):
    """A blocking receive exceeded its deadline."""


class ConnectionRefused(Exception):
    """No listener at the destination port."""


class ConnectionClosed(Exception):
    """The peer closed the connection and the inbox is drained."""


class ListenerClosed(Exception):
    """The listener was closed."""


@dataclass(frozen=True, slots=True)
class Datagram:
    """One UDP datagram as seen by the receiver."""

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    payload: Any
    nbytes: int


def _socket_closed() -> Exception:
    return OSError("socket closed")


def _peer_closed() -> Exception:
    return ConnectionClosed("peer closed connection")


def _conn_closed() -> Exception:
    return ConnectionClosed("connection closed")


class _Mailbox:
    """FIFO inbox shared by UDP sockets and TCP connection endpoints.

    Receives are the per-message hot path, so the mailbox triggers
    waiter events directly (skipping the ``succeed`` wrapper) and
    supports unwrapping ``(payload, nbytes)`` items at delivery time —
    sparing :meth:`TcpConnection.recv` a relay event per message.
    """

    __slots__ = ("_host", "_queue", "_waiters", "closed")

    def __init__(self, host: Host) -> None:
        self._host = host
        self._queue: Deque[Any] = deque()
        #: Waiting ``(event, unwrap)`` pairs, FIFO.
        self._waiters: Deque[Tuple[Event, bool]] = deque()
        self.closed = False

    def push(self, item: Any) -> None:
        waiters = self._waiters
        while waiters:
            waiter, unwrap = waiters.popleft()
            if not waiter.triggered:
                waiter._trigger(True, item[0] if unwrap else item, None)
                return
        self._queue.append(item)

    def close(self, exc_factory: Callable[[], Exception]) -> None:
        self.closed = True
        while self._waiters:
            waiter, _unwrap = self._waiters.popleft()
            if not waiter.triggered:
                waiter.fail(exc_factory())

    def pop(self, timeout_ms: Optional[float],
            exc_factory: Callable[[], Exception],
            unwrap: bool = False) -> Event:
        sim = self._host.network.sim
        event = Event(sim)
        if self._queue:
            item = self._queue.popleft()
            # Inline an immediate success: the event is brand new, so
            # there are no callbacks to run and no double-trigger risk.
            event.triggered = True
            event.ok = True
            event.value = item[0] if unwrap else item
            return event
        if self.closed:
            event.fail(exc_factory())
            return event
        self._waiters.append((event, unwrap))
        if timeout_ms is not None:

            def expire() -> None:
                if not event.triggered:
                    event.fail(SocketTimeout(
                        "no data within {:.1f}ms".format(timeout_ms)))

            sim.schedule(timeout_ms, expire)
        return event


class UdpSocket:
    """An unreliable datagram socket bound to (host, port)."""

    __slots__ = ("host", "port", "_mailbox", "closed")

    def __init__(self, host: Host, port: int) -> None:
        key = (host.ip, port)
        table = host.network.udp_ports
        if key in table:
            raise OSError("UDP port {} already bound on {}".format(port, host.ip))
        table[key] = self
        self.host = host
        self.port = port
        self._mailbox = _Mailbox(host)
        self.closed = False

    def sendto(self, payload: Any, nbytes: int, dst_ip: str, dst_port: int) -> None:
        """Send one datagram; silently dropped on loss or closed port."""
        if self.closed:
            raise OSError("socket is closed")
        network = self.host.network
        dst_ip = network.resolve_destination(self.host, dst_ip)
        datagram = Datagram(
            src_ip=self.host.ip,
            src_port=self.port,
            dst_ip=dst_ip,
            dst_port=dst_port,
            payload=payload,
            nbytes=nbytes,
        )

        def deliver() -> None:
            sock = network.udp_ports.get((dst_ip, dst_port))
            if isinstance(sock, UdpSocket) and not sock.closed:
                sock._mailbox.push(datagram)

        network.transmit(
            self.host, dst_ip, nbytes, deliver, channel=0, reliable=False
        )

    def recv(self, timeout_ms: Optional[float] = None) -> Event:
        """Event yielding the next :class:`Datagram`.

        Fails with :class:`SocketTimeout` if *timeout_ms* elapses first.
        """
        return self._mailbox.pop(timeout_ms, _socket_closed)

    def close(self) -> None:
        """Close this endpoint (pending receives fail)."""
        if not self.closed:
            self.closed = True
            self.host.network.udp_ports.pop((self.host.ip, self.port), None)
            self._mailbox.close(_socket_closed)


class TcpConnection:
    """One endpoint of an established, reliable, in-order byte channel."""

    __slots__ = (
        "host", "local_port", "remote_ip", "remote_port", "channel",
        "peer", "closed", "remote_closed", "handshake_ms",
        "bytes_sent", "bytes_received", "_mailbox", "_outbox",
    )

    def __init__(
        self,
        host: Host,
        local_port: int,
        remote_ip: str,
        remote_port: int,
        channel: int,
    ) -> None:
        self.host = host
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.channel = channel
        self.peer: Optional["TcpConnection"] = None
        self.closed = False
        self.remote_closed = False
        #: Client-side measured SYN→SYN-ACK duration, ms (None on server).
        self.handshake_ms: Optional[float] = None
        #: Total application bytes sent/received (accounting/tests).
        self.bytes_sent = 0
        self.bytes_received = 0
        self._mailbox = _Mailbox(host)
        #: In-flight ``(payload, nbytes)`` items, drained in FIFO order
        #: by :meth:`_deliver_next` (the fabric preserves per-channel
        #: ordering, so index bookkeeping is unnecessary).
        self._outbox: Deque[Tuple[Any, int]] = deque()

    # -- data path ---------------------------------------------------------

    def send(self, payload: Any, nbytes: int) -> None:
        """Queue one application message for reliable in-order delivery."""
        if self.closed:
            raise ConnectionClosed("send on closed connection")
        if self.peer is None:
            raise ConnectionClosed("connection not established")
        self.bytes_sent += nbytes
        # The bound delivery method replaces a per-send closure; the
        # outbox supplies the message because per-channel FIFO delivery
        # means arrivals drain it in send order.
        self._outbox.append((payload, nbytes))
        self.host.network.transmit(
            self.host,
            self.remote_ip,
            nbytes + _ACK_BYTES,
            self._deliver_next,
            channel=self.channel,
            reliable=True,
        )

    def _deliver_next(self) -> None:
        item = self._outbox.popleft()
        peer = self.peer
        if not peer.closed:
            peer.bytes_received += item[1]
            peer._mailbox.push(item)

    def recv(self, timeout_ms: Optional[float] = None) -> Event:
        """Event yielding the next message payload.

        Fails with :class:`ConnectionClosed` once the peer has closed
        and all in-flight data has been drained, or with
        :class:`SocketTimeout` on deadline expiry.  The mailbox unwraps
        the ``(payload, nbytes)`` item at delivery time, so no relay
        event is allocated per message.
        """
        return self._mailbox.pop(timeout_ms, _peer_closed, unwrap=True)

    def recv_sized(self, timeout_ms: Optional[float] = None) -> Event:
        """Like :meth:`recv` but yields ``(payload, nbytes)``.

        Tunnel relays need the original wire size to recharge the next
        leg correctly.
        """
        return self._mailbox.pop(timeout_ms, _peer_closed)

    def close(self) -> None:
        """Close this endpoint and notify the peer (FIN)."""
        if self.closed:
            return
        self.closed = True
        self._mailbox.close(_conn_closed)
        peer = self.peer
        if peer is None or peer.closed:
            return

        def deliver_fin() -> None:
            if not peer.closed:
                peer.remote_closed = True
                peer._mailbox.close(_peer_closed)

        self.host.network.transmit(
            self.host,
            self.remote_ip,
            _FIN_BYTES,
            deliver_fin,
            channel=self.channel,
            reliable=True,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<TcpConnection {}:{} -> {}:{}>".format(
            self.host.ip, self.local_port, self.remote_ip, self.remote_port
        )


class TcpListener:
    """A passive TCP endpoint that spawns a handler per connection."""

    __slots__ = ("host", "port", "handler", "closed", "_handler_name")

    def __init__(self, host: Host, port: int, handler) -> None:
        key = (host.ip, port)
        table = host.network.tcp_ports
        if key in table:
            raise OSError("TCP port {} already bound on {}".format(port, host.ip))
        table[key] = self
        self.host = host
        self.port = port
        self.handler = handler
        self.closed = False
        # One spawn per accepted connection: format the diagnostic
        # process name once per listener, not once per connection.
        self._handler_name = "tcp-handler-{}:{}".format(host.ip, port)

    def _accept(self, client_conn_info: Tuple[str, int, int]) -> "TcpConnection":
        client_ip, client_port, channel = client_conn_info
        conn = TcpConnection(
            host=self.host,
            local_port=self.port,
            remote_ip=client_ip,
            remote_port=client_port,
            channel=channel,
        )
        self.host.network.sim.spawn(self.handler(conn), name=self._handler_name)
        return conn

    def close(self) -> None:
        """Close this endpoint (pending receives fail)."""
        if not self.closed:
            self.closed = True
            self.host.network.tcp_ports.pop((self.host.ip, self.port), None)


def open_tcp(host: Host, dst_ip: str, dst_port: int):
    """Connect to ``dst_ip:dst_port``; generator returning a connection.

    Implements the three-way handshake as actual fabric messages: the
    SYN travels to the listener (one sampled delay), the SYN-ACK comes
    back (another sampled delay), and the caller resumes having
    measured ``handshake_ms``.  The final ACK rides the first data
    segment, as TCP does, so it adds no latency.
    """
    network = host.network
    sim = network.sim
    dst_ip = network.resolve_destination(host, dst_ip)
    local_port = host.ephemeral_port()
    channel = next(_channel_counter)
    started = sim.now
    established = sim.event()

    client_conn = TcpConnection(
        host=host,
        local_port=local_port,
        remote_ip=dst_ip,
        remote_port=dst_port,
        channel=channel,
    )

    def on_syn() -> None:
        listener = network.tcp_ports.get((dst_ip, dst_port))
        if not isinstance(listener, TcpListener) or listener.closed:
            def refuse() -> None:
                if not established.triggered:
                    established.fail(ConnectionRefused(
                        "{}:{} refused connection".format(dst_ip, dst_port)))
            network.transmit(
                network.host(dst_ip) if network.has_host(dst_ip) else host,
                host.ip,
                _SYN_BYTES,
                refuse,
                channel=channel,
                reliable=True,
            )
            return
        server_conn = listener._accept((host.ip, local_port, channel))
        server_conn.peer = client_conn
        client_conn.peer = server_conn

        def on_syn_ack() -> None:
            if not established.triggered:
                client_conn.handshake_ms = sim.now - started
                established.succeed(client_conn)

        network.transmit(
            listener.host,
            host.ip,
            _SYN_BYTES,
            on_syn_ack,
            channel=channel,
            reliable=True,
        )

    if not network.has_host(dst_ip):
        raise ConnectionRefused("no route to {}".format(dst_ip))
    network.transmit(
        host, dst_ip, _SYN_BYTES, on_syn, channel=channel, reliable=True
    )
    conn = yield established
    return conn

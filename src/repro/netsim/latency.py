"""Geography-aware one-way delay model.

Every message delivery in the simulator samples a one-way delay that
decomposes the same way real Internet paths do:

``delay = access(src) + access(dst) + serialisation + propagation * stretch
          + queueing jitter + international transit extras``

* *access* is the last-mile latency of a residential endpoint (DSL,
  cable, congested wireless); datacenter endpoints contribute a fixed
  sub-millisecond hop.
* *serialisation* is message size over the endpoint's access bandwidth —
  this is where nationwide bandwidth (one of the paper's Section 6
  covariates) bites directly.
* *propagation* is great-circle distance over the speed of light in
  fibre, inflated by a per-site *path stretch* factor modelling routing
  circuity (poorly connected countries detour through remote exchange
  points, a well-documented effect that the paper's "number of ASes"
  covariate proxies).
* *queueing jitter* is a lognormal per-hop term.
* international messages pay each endpoint's *international transit*
  surcharge (satellite/submarine-cable detours for low-infrastructure
  countries).

Message loss is sampled per transmission; the transport layer decides
what a loss costs (UDP retry timers, TCP retransmission timeouts).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

from repro.geo.coords import geodesic_km

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.host import SiteProfile

__all__ = ["LatencyModel", "LatencyParams"]


@dataclass(frozen=True)
class LatencyParams:
    """Global tunables of the delay model (calibrated empirically)."""

    #: Speed of light in fibre, km per millisecond (~2/3 c).
    fiber_km_per_ms: float = 200.0
    #: Fixed per-message forwarding overhead (NIC/kernel/router), ms.
    per_hop_overhead_ms: float = 0.35
    #: Median of the lognormal queueing term for a 1.0 jitter scale, ms.
    queueing_median_ms: float = 0.8
    #: Sigma of the lognormal queueing term.
    queueing_sigma: float = 0.85
    #: Sigma of the multiplicative lognormal on residential access delay.
    access_sigma: float = 0.45
    #: Floor applied to any sampled one-way delay, ms.
    min_delay_ms: float = 0.05


class LatencyModel:
    """Samples one-way delays between two sites.

    The model is purely functional over ``(src, dst, nbytes, rng)`` so a
    seeded :class:`random.Random` gives fully reproducible runs.
    """

    #: Entries kept in the per-pair base-delay memo before it is reset.
    BASE_CACHE_LIMIT = 1 << 16

    def __init__(self, params: LatencyParams = LatencyParams()) -> None:
        self.params = params
        # Memo of everything about a (src, dst) pair that does not vary
        # per message: the deterministic base delay (overhead +
        # propagation + international transit), the queueing lognormal's
        # mu, each endpoint's datacenter flag / last-mile latency /
        # access rate in bits-per-ms, and the summed loss rate.  Keyed
        # by the identity of the frozen site profiles — far cheaper to
        # hash than the seven-field dataclasses themselves — with the
        # profiles pinned in the entry so an id is never reused while
        # its entry lives.  Every cached value is a pure function of the
        # profile values, so identity- vs value-keying changes only
        # hit/miss accounting, never a returned delay.
        self._base_cache: "dict[Tuple[int, int], tuple]" = {}
        self.base_cache_hits = 0
        self.base_cache_misses = 0

    # -- components -----------------------------------------------------

    def propagation_ms(self, src: "SiteProfile", dst: "SiteProfile") -> float:
        """Deterministic propagation component (no jitter)."""
        distance = geodesic_km(src.location, dst.location)
        stretch = 0.5 * (src.path_stretch + dst.path_stretch)
        return (distance / self.params.fiber_km_per_ms) * stretch

    def serialization_ms(self, site: "SiteProfile", nbytes: int) -> float:
        """Time to clock *nbytes* through *site*'s access link."""
        if site.bandwidth_mbps <= 0:
            raise ValueError("site bandwidth must be positive")
        bits = nbytes * 8.0
        return bits / (site.bandwidth_mbps * 1000.0)

    def _access_ms(self, site: "SiteProfile", rng: random.Random) -> float:
        if site.datacenter:
            return site.last_mile_ms
        factor = rng.lognormvariate(0.0, self.params.access_sigma)
        return site.last_mile_ms * factor

    def _queueing_ms(self, src: "SiteProfile", dst: "SiteProfile",
                     rng: random.Random) -> float:
        scale = max(src.jitter_scale, dst.jitter_scale)
        mu = math.log(self.params.queueing_median_ms * max(scale, 1e-6))
        return rng.lognormvariate(mu, self.params.queueing_sigma)

    def _transit_extra_ms(self, src: "SiteProfile", dst: "SiteProfile") -> float:
        if src.country_code == dst.country_code:
            return 0.0
        return src.intl_extra_ms + dst.intl_extra_ms

    def base_ms(self, src: "SiteProfile", dst: "SiteProfile") -> float:
        """Deterministic per-pair delay: overhead + propagation + transit.

        Memoized — this is the expensive jitter-free part of every
        sampled delay, identical for every message on the same path.
        """
        entry = self._base_cache.get((id(src), id(dst)))
        if entry is not None:
            self.base_cache_hits += 1
            return entry[0]
        return self._pair_entry(src, dst)[0]

    def _pair_entry(self, src: "SiteProfile", dst: "SiteProfile") -> tuple:
        """Compute and memoize the per-pair constants (cache miss path).

        Entry layout: ``(base_ms, queueing_mu, src_datacenter,
        src_last_mile_ms, src_bits_per_ms, dst_datacenter,
        dst_last_mile_ms, dst_bits_per_ms, loss_sum, src, dst)``.
        The bits-per-ms rates cache the exact product
        ``bandwidth_mbps * 1000.0`` that serialisation divides by, so
        sampled delays are bit-identical to the uncached form.
        """
        cache = self._base_cache
        self.base_cache_misses += 1
        params = self.params
        base = (
            params.per_hop_overhead_ms
            + self.propagation_ms(src, dst)
            + self._transit_extra_ms(src, dst)
        )
        scale = max(src.jitter_scale, dst.jitter_scale)
        mu = math.log(params.queueing_median_ms * max(scale, 1e-6))
        if src.bandwidth_mbps <= 0 or dst.bandwidth_mbps <= 0:
            raise ValueError("site bandwidth must be positive")
        if len(cache) >= self.BASE_CACHE_LIMIT:
            cache.clear()
        entry = (
            base,
            mu,
            src.datacenter,
            src.last_mile_ms,
            src.bandwidth_mbps * 1000.0,
            dst.datacenter,
            dst.last_mile_ms,
            dst.bandwidth_mbps * 1000.0,
            src.loss_rate + dst.loss_rate,
            src,
            dst,
        )
        cache[(id(src), id(dst))] = entry
        return entry

    # -- sampling ---------------------------------------------------------

    def one_way_ms(
        self,
        src: "SiteProfile",
        dst: "SiteProfile",
        nbytes: int,
        rng: random.Random,
    ) -> float:
        """Sample a one-way delay for a message of *nbytes*.

        The component methods above stay the spec; this body inlines
        them because it runs once per simulated transmission — well
        over a hundred thousand times per small campaign.  The RNG
        draw order (src access, dst access, queueing) and every
        floating-point expression match the component methods exactly,
        so sampled delays are bit-identical to the unrolled form.
        """
        entry = self._base_cache.get((id(src), id(dst)))
        if entry is not None:
            self.base_cache_hits += 1
        else:
            entry = self._pair_entry(src, dst)
        params = self.params
        (delay, mu, src_dc, src_lm, src_bits_ms,
         dst_dc, dst_lm, dst_bits_ms, _loss, _src, _dst) = entry
        if src_dc:
            delay += src_lm
        else:
            delay += src_lm * rng.lognormvariate(0.0, params.access_sigma)
        if dst_dc:
            delay += dst_lm
        else:
            delay += dst_lm * rng.lognormvariate(0.0, params.access_sigma)
        bits = nbytes * 8.0
        delay += bits / src_bits_ms
        delay += bits / dst_bits_ms
        delay += rng.lognormvariate(mu, params.queueing_sigma)
        min_delay = params.min_delay_ms
        return delay if delay > min_delay else min_delay

    def loss(
        self, src: "SiteProfile", dst: "SiteProfile", rng: random.Random
    ) -> bool:
        """Sample whether a single transmission is lost."""
        probability = src.loss_rate + dst.loss_rate
        return rng.random() < probability

    def expected_rtt_ms(
        self, src: "SiteProfile", dst: "SiteProfile", nbytes: int = 100
    ) -> float:
        """Jitter-free round-trip estimate (used for RTO seeding)."""
        # base_ms already holds overhead + propagation + transit once;
        # a round trip pays each of those twice.
        return (
            2.0 * self.base_ms(src, dst)
            + 2.0 * (src.last_mile_ms + dst.last_mile_ms)
            + self.serialization_ms(src, nbytes)
            + self.serialization_ms(dst, nbytes)
        )

    def _transit_extra_static(
        self, src: "SiteProfile", dst: "SiteProfile"
    ) -> float:
        return 2.0 * self._transit_extra_ms(src, dst)

"""Hosts: addressable endpoints with socket APIs.

A :class:`Host` couples an IP address with a :class:`SiteProfile` (the
latency-relevant properties of its network attachment) and exposes the
socket primitives the protocol stacks are written against:

* :meth:`Host.udp_socket` — datagram sockets (DNS over UDP),
* :meth:`Host.listen_tcp` / :meth:`Host.open_tcp` — stream connections
  (HTTP, TLS, DoH),
* :meth:`Host.busy` — CPU/processing delays (server-side handling time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.geo.coords import LatLon
from repro.netsim.engine import Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.network import Network
    from repro.netsim.sockets import TcpConnection, TcpListener, UdpSocket

__all__ = ["Host", "SiteProfile"]


@dataclass(frozen=True)
class SiteProfile:
    """Latency-relevant properties of a host's network attachment."""

    location: LatLon
    country_code: str
    #: Median one-way last-mile latency, ms (sub-ms for datacenters).
    last_mile_ms: float
    #: Access bandwidth used for serialisation delay, Mbps.
    bandwidth_mbps: float
    #: Routing circuity multiplier on great-circle propagation (>= 1).
    path_stretch: float
    #: Scale of the lognormal queueing jitter (1.0 = well-provisioned).
    jitter_scale: float = 1.0
    #: Per-transmission loss probability contributed by this endpoint.
    loss_rate: float = 0.0
    #: Surcharge applied to international messages, ms (transit detours).
    intl_extra_ms: float = 0.0
    #: Datacenter endpoints skip residential access jitter.
    datacenter: bool = False

    def __post_init__(self) -> None:
        if self.last_mile_ms < 0:
            raise ValueError("last_mile_ms must be non-negative")
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth_mbps must be positive")
        if self.path_stretch < 1.0:
            raise ValueError("path_stretch must be >= 1")
        if not 0.0 <= self.loss_rate < 0.5:
            raise ValueError("loss_rate must be in [0, 0.5)")

    @staticmethod
    def datacenter_site(
        location: LatLon, country_code: str, path_stretch: float = 1.2
    ) -> "SiteProfile":
        """A well-connected datacenter attachment."""
        return SiteProfile(
            location=location,
            country_code=country_code,
            last_mile_ms=0.15,
            bandwidth_mbps=10000.0,
            path_stretch=path_stretch,
            jitter_scale=0.3,
            loss_rate=0.0005,
            intl_extra_ms=0.0,
            datacenter=True,
        )


@dataclass
class Host:
    """An addressable endpoint attached to a :class:`Network`."""

    name: str
    ip: str
    site: SiteProfile
    network: "Network" = field(repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self._next_ephemeral = 49152

    # -- identity --------------------------------------------------------

    @property
    def country_code(self) -> str:
        return self.site.country_code

    @property
    def location(self) -> LatLon:
        return self.site.location

    def ephemeral_port(self) -> int:
        """Vend the next ephemeral port number."""
        port = self._next_ephemeral
        self._next_ephemeral += 1
        if self._next_ephemeral > 65535:
            self._next_ephemeral = 49152
        return port

    # -- socket API --------------------------------------------------------

    def udp_socket(self, port: int = 0) -> "UdpSocket":
        """Open a UDP socket, binding *port* (0 picks an ephemeral one)."""
        from repro.netsim.sockets import UdpSocket

        if port == 0:
            port = self.ephemeral_port()
        return UdpSocket(self, port)

    def listen_tcp(
        self, port: int, handler: Callable[["TcpConnection"], object]
    ) -> "TcpListener":
        """Listen for TCP connections on *port*.

        *handler* is called with each accepted :class:`TcpConnection`
        and must return a generator, which is spawned as a process.
        """
        from repro.netsim.sockets import TcpListener

        return TcpListener(self, port, handler)

    def open_tcp(self, dst_ip: str, dst_port: int):
        """Open a TCP connection (generator; use with ``yield from``).

        Performs the three-way handshake with individually sampled
        one-way delays and returns an established
        :class:`TcpConnection`.  The connection records the measured
        handshake duration, which higher layers (the BrightData exit
        node) report in timing headers.
        """
        from repro.netsim.sockets import open_tcp

        return open_tcp(self, dst_ip, dst_port)

    def busy(self, duration_ms: float) -> Timeout:
        """An event representing *duration_ms* of local processing."""
        return self.network.sim.timeout(
            duration_ms if duration_ms > 0.0 else 0.0
        )

    def __hash__(self) -> int:
        return hash(self.ip)

"""The network fabric: host registry and message delivery.

A :class:`Network` binds the simulator kernel, the latency model and a
seeded random source.  It moves *messages* (arbitrary payload objects
with an explicit wire size) between hosts, sampling per-transmission
one-way delays and losses, and preserving FIFO ordering per
(src, dst, channel) so streams never reorder.
"""

from __future__ import annotations

import random
from heapq import heappush
from typing import Callable, Dict, Optional, Tuple

from repro.netsim.engine import Simulator
from repro.netsim.host import Host, SiteProfile
from repro.netsim.latency import LatencyModel, LatencyParams

__all__ = ["Network", "NetworkError", "UnknownHostError"]


class NetworkError(RuntimeError):
    """Base class for fabric-level failures."""


class UnknownHostError(NetworkError):
    """Raised when a message is addressed to an unattached IP."""


class Network:
    """Registry of hosts plus the delivery machinery between them."""

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        self.sim = sim
        self.rng = rng
        self.latency = latency or LatencyModel(LatencyParams())
        #: Optional stateful bursty-loss process (an object with a
        #: ``lost() -> bool`` method, e.g. a Gilbert–Elliott chain from
        #: ``repro.faults``), layered on the i.i.d. loss model.
        self.burst_loss = None
        self._hosts: Dict[str, Host] = {}
        # Anycast VIPs: address -> selector(client_host) -> concrete IP.
        self._anycast: Dict[str, Callable[[Host], str]] = {}
        # FIFO guard: last scheduled arrival per ordered channel.
        self._last_arrival: Dict[Tuple[str, str, int], float] = {}
        # Port demux tables are owned by the socket layer but stored here
        # so they are per-network (tests build many independent networks).
        self.udp_ports: Dict[Tuple[str, int], object] = {}
        self.tcp_ports: Dict[Tuple[str, int], object] = {}

    # -- host management -------------------------------------------------

    def add_host(self, name: str, ip: str, site: SiteProfile) -> Host:
        """Create and attach a host."""
        if ip in self._hosts:
            raise NetworkError("IP already attached: {}".format(ip))
        host = Host(name=name, ip=ip, site=site, network=self)
        self._hosts[ip] = host
        return host

    def host(self, ip: str) -> Host:
        """Look up the host attached at *ip*."""
        try:
            return self._hosts[ip]
        except KeyError:
            raise UnknownHostError("no host attached at {}".format(ip)) from None

    def has_host(self, ip: str) -> bool:
        """Whether a host is attached at *ip*."""
        return ip in self._hosts

    # -- anycast ----------------------------------------------------------

    def register_anycast(
        self, vip: str, selector: Callable[[Host], str]
    ) -> None:
        """Register *vip* as an anycast address.

        *selector* maps a connecting client host to the concrete unicast
        address of the site that BGP-style routing would deliver it to.
        This is how the DoH providers' single public address (e.g.
        1.1.1.1-style) fans out to per-city PoPs.
        """
        if vip in self._hosts:
            raise NetworkError("VIP collides with a unicast host: {}".format(vip))
        self._anycast[vip] = selector

    def is_anycast(self, ip: str) -> bool:
        """Whether *ip* is a registered anycast VIP."""
        return ip in self._anycast

    def resolve_destination(self, src: Host, dst_ip: str) -> str:
        """Map *dst_ip* to a concrete host address for *src*.

        Unicast addresses pass through; anycast VIPs are resolved with
        the registered selector (stable per client, as BGP paths are).
        """
        selector = self._anycast.get(dst_ip)
        if selector is None:
            return dst_ip
        concrete = selector(src)
        if concrete in self._anycast:
            raise NetworkError("anycast selector returned another VIP")
        return concrete

    def __len__(self) -> int:
        return len(self._hosts)

    # -- delivery -----------------------------------------------------------

    def sample_one_way_ms(self, src: Host, dst: Host, nbytes: int) -> float:
        """Sample a one-way delay between two attached hosts."""
        return self.latency.one_way_ms(src.site, dst.site, nbytes, self.rng)

    def sample_loss(self, src: Host, dst: Host) -> bool:
        """Sample whether one transmission between the hosts is lost."""
        iid = self.latency.loss(src.site, dst.site, self.rng)
        burst = self.burst_loss
        # The chain steps on every transmission, even already-lost ones,
        # so burst state is a function of transmission count alone.
        bursty = burst is not None and burst.lost()
        return iid or bursty

    def transmit(
        self,
        src: Host,
        dst_ip: str,
        nbytes: int,
        deliver: Callable[[], None],
        channel: int = 0,
        reliable: bool = True,
        extra_delay_ms: float = 0.0,
    ) -> Optional[float]:
        """Schedule *deliver* to run when the message reaches *dst_ip*.

        With ``reliable=True`` losses are converted into retransmission
        delay (exponentially backed-off RTO seeded from the path's
        expected RTT), so delivery always happens — this is what the
        in-order TCP layer uses.  With ``reliable=False`` a lost message
        is silently dropped and None is returned (UDP semantics).

        Returns the scheduled arrival time, or None if dropped.

        This is the fabric's per-message hot path, so the sampling
        helpers above are inlined: delay first, then the i.i.d. loss
        draw, then the burst chain — the exact RNG draw order of
        :meth:`sample_one_way_ms` followed by :meth:`sample_loss`.  The
        per-pair constants (base delay, queueing mu, access rates, loss
        sum) come straight from the latency model's pair memo.
        """
        try:
            dst = self._hosts[dst_ip]
        except KeyError:
            raise UnknownHostError(
                "no host attached at {}".format(dst_ip)
            ) from None
        rng = self.rng
        src_site = src.site
        dst_site = dst.site
        latency = self.latency
        entry = latency._base_cache.get((id(src_site), id(dst_site)))
        if entry is not None:
            latency.base_cache_hits += 1
        else:
            entry = latency._pair_entry(src_site, dst_site)
        params = latency.params
        (delay, mu, src_dc, src_lm, src_bits_ms,
         dst_dc, dst_lm, dst_bits_ms, loss_sum, _src, _dst) = entry
        if src_dc:
            delay += src_lm
        else:
            delay += src_lm * rng.lognormvariate(0.0, params.access_sigma)
        if dst_dc:
            delay += dst_lm
        else:
            delay += dst_lm * rng.lognormvariate(0.0, params.access_sigma)
        bits = nbytes * 8.0
        delay += bits / src_bits_ms
        delay += bits / dst_bits_ms
        delay += rng.lognormvariate(mu, params.queueing_sigma)
        min_delay = params.min_delay_ms
        if delay <= min_delay:
            delay = min_delay
        delay += extra_delay_ms
        lost = rng.random() < loss_sum
        burst = self.burst_loss
        if burst is not None:
            # The chain steps on every transmission, even already-lost
            # ones, so burst state is a function of transmission count.
            lost = burst.lost() or lost
        if lost:
            if not reliable:
                return None
            delay += self._retransmission_penalty_ms(src, dst)
        sim = self.sim
        arrival = sim.now + delay
        key = (src.ip, dst_ip, channel)
        last = self._last_arrival
        previous = last.get(key)
        if previous is not None and arrival <= previous:
            arrival = previous + 1e-6
        last[key] = arrival
        # Inline sim.schedule(arrival - now, deliver): the delay is
        # non-negative by construction (sampled delay has a positive
        # floor and the FIFO guard only pushes arrivals later), so the
        # kernel's in-the-past check is redundant here.
        sim._seq += 1
        sim.events_scheduled += 1
        heappush(sim._heap, (arrival, sim._seq, deliver, None))
        return arrival

    def forget_flow_state(self) -> None:
        """Drop per-channel FIFO bookkeeping.

        Safe whenever the event queue is drained (no in-flight
        messages): channel ids are never reused, so stale entries only
        cost memory.  Long campaigns call this between batches.
        """
        self._last_arrival.clear()

    def _retransmission_penalty_ms(self, src: Host, dst: Host) -> float:
        """Cost of recovering one lost segment: RTO plus the resend."""
        rtt = self.latency.expected_rtt_ms(src.site, dst.site)
        rto = max(200.0, 2.0 * rtt)
        penalty = rto
        # Back off while consecutive retransmissions are also lost.
        while self.sample_loss(src, dst):
            rto *= 2.0
            penalty += rto
            if penalty > 30000.0:  # give up doubling; cap recovery cost
                break
        return penalty

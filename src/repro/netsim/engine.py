"""Event loop, events and processes for the network simulator.

The engine is a small, deterministic discrete-event kernel in the style
of SimPy.  Simulation *processes* are Python generators that yield
:class:`Event` objects; the process is suspended until the event
triggers and is resumed with the event's value (or has the event's
exception thrown into it).  Time is a float in **milliseconds**.

The kernel is deliberately strict: running past the last event simply
stops, events may only be triggered once, and scheduling in the past is
an error.  All behaviour is deterministic given the initial seed of the
random sources used by higher layers (the kernel itself uses no
randomness).

The dispatch loop is the hottest code in the repository — a full-scale
campaign executes tens of millions of events — so :meth:`Simulator.run`
inlines the per-event work with the heap and ``heappop`` bound to
locals, timeouts and processes schedule bound methods instead of
allocating a closure per event, and fired :class:`Timeout` objects are
recycled through a free list when nothing else references them.
"""

from __future__ import annotations

import heapq
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Event",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "first_of",
]

#: Upper bound on recycled Timeout objects kept per simulator.
_FREELIST_MAX = 512


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double trigger, time travel...)."""


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it is later either :meth:`succeed`-ed
    with a value or :meth:`fail`-ed with an exception.  Callbacks added
    with :meth:`add_callback` run, in insertion order, when the event
    triggers.  Waiting processes are resumed through such callbacks.
    """

    __slots__ = ("sim", "_callbacks", "triggered", "ok", "value", "exception")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._callbacks: List[Callable[["Event"], None]] = []
        self.triggered = False
        self.ok = False
        self.value: Any = None
        self.exception: Optional[BaseException] = None

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register *callback*; runs immediately if already triggered."""
        if self.triggered:
            callback(self)
        else:
            self._callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Unregister *callback* if still pending (no-op otherwise).

        Combinators such as :func:`first_of` detach their relays from
        the losing events once an outcome is decided; without this,
        long-lived events (listener mailboxes, shared timers) would pin
        every relay ever registered for the whole campaign.
        """
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        self._trigger(True, value, None)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(False, None, exception)
        return self

    def _trigger(
        self, ok: bool, value: Any, exception: Optional[BaseException]
    ) -> None:
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.ok = ok
        self.value = value
        self.exception = exception
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self.triggered:
            state = "ok" if self.ok else "failed"
        return "<{} {}>".format(type(self).__name__, state)


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay", "_pending")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError("negative timeout: {!r}".format(delay))
        super().__init__(sim)
        self.delay = delay = float(delay)
        self._pending = value
        # Inline sim.schedule (delay already validated non-negative).
        sim._seq += 1
        sim.events_scheduled += 1
        heapq.heappush(sim._heap, (sim.now + delay, sim._seq, self._fire, self))

    def _fire(self) -> None:
        """Kernel entry point: deliver the pending value at the deadline."""
        self._trigger(True, self._pending, None)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an :class:`Event` that triggers when the
    generator returns (with the returned value) or raises (with the
    exception), so processes can wait on each other.
    """

    __slots__ = ("_generator", "name")

    def __init__(
        self, sim: "Simulator", generator: ProcessGenerator, name: str = ""
    ) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError("spawn() requires a generator, got {!r}".format(generator))
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Start the process on the next kernel step at the current time so
        # that spawning never runs user code re-entrantly.  (Inline
        # zero-delay sim.schedule.)
        sim._seq += 1
        sim.events_scheduled += 1
        heapq.heappush(sim._heap, (sim.now, sim._seq, self._start, None))

    def _start(self) -> None:
        self._resume(None, None)

    def interrupt(self, cause: str = "interrupted") -> None:
        """Throw :class:`ProcessInterrupt` into the process."""
        if not self.triggered:
            self.sim.schedule(0.0, lambda: self._resume(None, ProcessInterrupt(cause)))

    def _resume(self, value: Any, exception: Optional[BaseException]) -> None:
        if self.triggered:
            return
        try:
            if exception is not None:
                target = self._generator.throw(exception)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._trigger(True, stop.value, None)
            return
        except ProcessInterrupt as exc:
            self.fail(exc)
            return
        except Exception as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(
                SimulationError(
                    "process {!r} yielded {!r}; processes must yield "
                    "Event objects".format(self.name, target)
                )
            )
            return
        # Inline add_callback: this runs once per yield, i.e. once per
        # kernel resumption — the single most frequent call site.
        if target.triggered:
            self._on_event(target)
        else:
            target._callbacks.append(self._on_event)

    def _on_event(self, event: Event) -> None:
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.exception)


class ProcessInterrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called."""


class Simulator:
    """The discrete-event kernel.

    >>> sim = Simulator()
    >>> def ping():
    ...     yield sim.timeout(5.0)
    ...     return sim.now
    >>> proc = sim.spawn(ping())
    >>> sim.run()
    >>> proc.value
    5.0
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        #: Heap entries are ``(time, seq, callback, owner)``; *owner* is
        #: the Timeout the callback belongs to (recycled after firing)
        #: or None for plain callbacks.
        self._heap: List[Tuple[float, int, Callable[[], None], Optional[Event]]] = []
        self._seq = 0
        self._running = False
        self._timeout_free: List[Timeout] = []
        #: Lifetime totals, scraped by ``repro.obs.collect``.  They are
        #: pure functions of the deterministic execution, so they merge
        #: identically for any worker count at a fixed shard layout.
        self.events_scheduled = 0
        self.events_executed = 0

    # -- scheduling ----------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        owner: Optional[Event] = None,
    ) -> None:
        """Run *callback* after *delay* milliseconds of simulated time.

        *owner* marks the callback's Timeout for recycling once it has
        fired and nothing else references it; external callers never
        need to pass it.
        """
        if delay < 0:
            raise SimulationError("cannot schedule in the past ({})".format(delay))
        self._seq += 1
        self.events_scheduled += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback, owner))

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after *delay* milliseconds."""
        free = self._timeout_free
        if free:
            if delay < 0:
                raise SimulationError("negative timeout: {!r}".format(delay))
            timeout = free.pop()
            timeout.delay = delay = float(delay)
            timeout._pending = value
            timeout.triggered = False
            timeout.ok = False
            timeout.value = None
            timeout.exception = None
            self._seq += 1
            self.events_scheduled += 1
            heapq.heappush(
                self._heap, (self.now + delay, self._seq, timeout._fire, timeout)
            )
            return timeout
        return Timeout(self, delay, value)

    def spawn(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process running *generator*."""
        return Process(self, generator, name=name)

    # -- execution -----------------------------------------------------

    def step(self) -> bool:
        """Execute the next scheduled callback. Returns False when idle."""
        if not self._heap:
            return False
        time, _seq, callback, owner = heapq.heappop(self._heap)
        if time < self.now:
            raise SimulationError("event queue corrupted: time moved backwards")
        self.now = time
        self.events_executed += 1
        callback()
        if (
            owner is not None
            and len(self._timeout_free) < _FREELIST_MAX
            and getrefcount(owner) == 3
        ):
            self._timeout_free.append(owner)
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event queue drains or *until* is reached.

        This is the kernel's hot loop: :meth:`step` is inlined with the
        heap, ``heappop`` and the free list bound to locals.  Fired
        timeouts are recycled only when the refcount proves the kernel
        holds the last references (callback + loop local + getrefcount
        argument = 3), so user code that keeps a Timeout sees exactly
        the semantics of a freshly allocated one.
        """
        if self._running:
            raise SimulationError("run() is not re-entrant")
        self._running = True
        heap = self._heap
        heappop = heapq.heappop
        free = self._timeout_free
        executed = 0
        try:
            if until is None:
                # Run-to-drain (the campaign's case): no deadline check
                # on the quarter-million-iteration loop.
                while heap:
                    time, _seq, callback, owner = heappop(heap)
                    if time < self.now:
                        raise SimulationError(
                            "event queue corrupted: time moved backwards"
                        )
                    self.now = time
                    executed += 1
                    callback()
                    if (
                        owner is not None
                        and len(free) < _FREELIST_MAX
                        and getrefcount(owner) == 3
                    ):
                        free.append(owner)
                return
            while heap:
                if heap[0][0] > until:
                    self.now = until
                    return
                time, _seq, callback, owner = heappop(heap)
                if time < self.now:
                    raise SimulationError(
                        "event queue corrupted: time moved backwards"
                    )
                self.now = time
                executed += 1
                callback()
                if (
                    owner is not None
                    and len(free) < _FREELIST_MAX
                    and getrefcount(owner) == 3
                ):
                    free.append(owner)
            if until > self.now:
                self.now = until
        finally:
            self.events_executed += executed
            self._running = False

    def run_process(self, generator: ProcessGenerator, name: str = "") -> Any:
        """Spawn *generator*, run to completion and return its result.

        Convenience wrapper used pervasively by tests and the
        measurement harness.  Raises the process's exception if it
        failed.
        """
        process = self.spawn(generator, name=name)
        self.run()
        if not process.triggered:
            raise SimulationError(
                "process {!r} did not finish (deadlock?)".format(process.name)
            )
        if not process.ok:
            raise process.exception  # type: ignore[misc]
        return process.value


def first_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """An event that mirrors whichever of *events* triggers first.

    Used for timeout-or-response patterns (e.g. UDP retransmission).
    The resulting event succeeds with ``(index, value)`` of the winner,
    or fails with the winner's exception.

    Once the outcome is decided every relay registered on a losing
    event is detached again: losers may be long-lived events, and a
    220k-measurement campaign would otherwise accumulate dead
    callbacks on them for its entire lifetime.
    """
    outcome = sim.event()
    relays: List[Tuple[Event, Callable[[Event], None]]] = []

    def finish(winner_index: int, winner: Event) -> None:
        if outcome.triggered:
            return
        for event, relay in relays:
            if event is not winner and not event.triggered:
                event.remove_callback(relay)
        if winner.ok:
            outcome.succeed((winner_index, winner.value))
        else:
            outcome.fail(winner.exception)  # type: ignore[arg-type]

    for index, event in enumerate(events):
        relays.append(
            (event, lambda ev, index=index: finish(index, ev))
        )
    for event, relay in relays:
        event.add_callback(relay)
        if outcome.triggered:
            break
    return outcome

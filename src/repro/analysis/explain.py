"""Section 6: explaining DoH performance differences.

Two models over (client, provider) observations:

* **Logistic** (§6.2.1, Table 4): is a client's Do53→DoH-N multiplier
  worse than the global median?  Categorical inputs — nationwide
  bandwidth (FCC fast cutoff, >25 Mbps), World Bank income group,
  AS count above/below the global median, and the resolver — each with
  the paper's control level.  Reported as odds ratios of experiencing
  a slowdown.
* **Linear** (§6.2.2, Tables 5–6): the raw delta in ms against GDP per
  capita, bandwidth, AS count, distance to our authoritative name
  server and distance to the serving DoH PoP; reported raw and min-max
  scaled.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.slowdown import (
    ClientProviderStat,
    client_provider_stats,
    global_median_multipliers,
)
from repro.dataset.store import Dataset
from repro.geo.coords import KM_PER_MILE, LatLon, geodesic_km
from repro.geo.countries import COUNTRIES, IncomeGroup
from repro.stats.design import CategoricalSpec, DesignMatrix
from repro.stats.linear import LinearModel, fit_ols
from repro.stats.logistic import LogisticModel, fit_logistic

__all__ = [
    "LinearDeltaResult",
    "LogisticSlowdownResult",
    "as_count_median",
    "linear_delta_model",
    "logistic_slowdown_model",
]

#: Where the paper's authoritative name server sits (Figure 1: USA).
DEFAULT_NAMESERVER_LOCATION = LatLon(39.0, -77.5)

_INCOME_LEVELS = (
    IncomeGroup.HIGH,
    IncomeGroup.UPPER_MIDDLE,
    IncomeGroup.LOWER_MIDDLE,
    IncomeGroup.LOW,
)


def as_count_median() -> float:
    """Global median AS count per country (the paper reports 25)."""
    return statistics.median(
        country.num_ases for country in COUNTRIES.values()
    )


def _covariates(stat: ClientProviderStat) -> Optional[Dict[str, str]]:
    country = COUNTRIES.get(stat.country)
    if country is None:
        return None
    return {
        "bandwidth": "fast" if country.fast_internet else "slow",
        "income": country.income_group,
        "ases": "high" if country.num_ases > as_count_median() else "low",
        "resolver": stat.provider,
    }


@dataclass(frozen=True)
class LogisticSlowdownResult:
    """Table 4 for one reuse depth."""

    n: int
    median_multiplier: float
    model: LogisticModel
    observations: int

    def odds_of_slowdown(self, variable: str, level: str) -> float:
        """Odds ratio of a worse-than-median slowdown vs the control."""
        return self.model.odds_ratio("{}:{}".format(variable, level))

    def p_value(self, variable: str, level: str) -> float:
        """Wald p-value for the level's slowdown odds."""
        return self.model.p_value("{}:{}".format(variable, level))


def logistic_slowdown_model(
    dataset: Dataset,
    n: int = 1,
    stats: Optional[Sequence[ClientProviderStat]] = None,
    providers: Optional[Sequence[str]] = None,
) -> LogisticSlowdownResult:
    """Fit the §6.2.1 logistic model for reuse depth *n*."""
    if stats is None:
        stats = client_provider_stats(dataset)
    if providers is None:
        providers = sorted({s.provider for s in stats})
    median_multiplier = global_median_multipliers(stats, depths=(n,))[n]

    design = DesignMatrix(
        categoricals=[
            CategoricalSpec("bandwidth", control="fast",
                            levels=("fast", "slow")),
            CategoricalSpec("income", control=IncomeGroup.HIGH,
                            levels=_INCOME_LEVELS),
            CategoricalSpec("ases", control="high", levels=("high", "low")),
            CategoricalSpec("resolver", control="cloudflare",
                            levels=tuple(providers)),
        ],
    )
    for stat in stats:
        covariates = _covariates(stat)
        if covariates is None:
            continue
        slowdown = 1.0 if stat.multiplier(n) > median_multiplier else 0.0
        design.add_row(covariates, {}, slowdown)
    X, y = design.matrices()
    model = fit_logistic(X, y, design.column_names)
    return LogisticSlowdownResult(
        n=n,
        median_multiplier=median_multiplier,
        model=model,
        observations=len(design),
    )


@dataclass(frozen=True)
class LinearDeltaResult:
    """Table 5/6 for one reuse depth (and optional provider filter)."""

    n: int
    provider: Optional[str]
    model: LinearModel
    observations: int

    _METRICS = {
        "gdp": "gdp",
        "bandwidth": "bandwidth",
        "num_ases": "num_ases",
        "nameserver_dist": "nameserver_dist",
        "resolver_dist": "resolver_dist",
    }

    def coefficient(self, metric: str) -> float:
        """Raw OLS coefficient for *metric* (ms per unit)."""
        return self.model.coefficient(self._METRICS[metric])

    def scaled_coefficient(self, metric: str) -> float:
        """Min-max scaled coefficient (ms over the metric's range)."""
        return self.model.scaled_coefficient(self._METRICS[metric])

    def p_value(self, metric: str) -> float:
        """Two-sided t-test p-value for *metric*."""
        return self.model.p_value(self._METRICS[metric])


def linear_delta_model(
    dataset: Dataset,
    n: int = 1,
    provider: Optional[str] = None,
    stats: Optional[Sequence[ClientProviderStat]] = None,
    nameserver_location: LatLon = DEFAULT_NAMESERVER_LOCATION,
) -> LinearDeltaResult:
    """Fit the §6.2.2 linear model of the raw Do53→DoH-N delta."""
    if stats is None:
        stats = client_provider_stats(dataset)
    client_location = {
        client.node_id: LatLon(client.lat, client.lon)
        for client in dataset.clients
    }
    design = DesignMatrix(
        continuous=(
            "gdp",
            "bandwidth",
            "num_ases",
            "nameserver_dist",
            "resolver_dist",
        ),
    )
    for stat in stats:
        if provider is not None and stat.provider != provider:
            continue
        country = COUNTRIES.get(stat.country)
        location = client_location.get(stat.node_id)
        if country is None or location is None:
            continue
        if stat.pop_lat is None or stat.pop_lon is None:
            continue
        nameserver_miles = (
            geodesic_km(location, nameserver_location) / KM_PER_MILE
        )
        resolver_miles = (
            geodesic_km(location, LatLon(stat.pop_lat, stat.pop_lon))
            / KM_PER_MILE
        )
        design.add_row(
            {},
            {
                "gdp": country.gdp_per_capita,
                "bandwidth": country.bandwidth_mbps,
                "num_ases": country.num_ases,
                "nameserver_dist": nameserver_miles,
                "resolver_dist": resolver_miles,
            },
            stat.delta(n),
        )
    X, y = design.matrices()
    model = fit_ols(X, y, design.column_names)
    return LinearDeltaResult(
        n=n,
        provider=provider,
        model=model,
        observations=len(design),
    )

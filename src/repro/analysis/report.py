"""Plain-text rendering of tables and figure summaries.

The benchmark harness prints these so a run's output can be compared
line-by-line against the paper's tables.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.figures import ClientsPerCountry
from repro.analysis.tables import (
    CompositionRow,
    Table4Row,
    Table5Row,
)
from repro.core.groundtruth import GroundTruthRow

__all__ = [
    "format_table",
    "render_figure3",
    "render_groundtruth",
    "render_table3",
    "render_table4",
    "render_table5",
]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an ASCII table with left-aligned, width-fitted columns."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError("row width mismatch")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[index]) for index, cell in enumerate(cells)
        ).rstrip()

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in materialised)
    return "\n".join(out)


def _significance(p: float) -> str:
    return "" if p < 0.001 else "*"


def render_groundtruth(rows: Sequence[GroundTruthRow], title: str) -> str:
    """Tables 1–2: method vs ground truth per country."""
    body = [
        (
            row.country,
            row.metric,
            "{:.0f}".format(row.method_ms),
            "{:.0f}".format(row.truth_ms),
            "{:.1f}".format(row.difference_ms),
        )
        for row in rows
    ]
    return "{}\n{}".format(
        title,
        format_table(
            ("country", "metric", "our method", "ground truth", "diff"),
            body,
        ),
    )


def render_table3(rows: Sequence[CompositionRow]) -> str:
    """Render Table 3 (dataset composition) as text."""
    return "Table 3: dataset composition\n" + format_table(
        ("resolver", "clients", "countries"),
        [(r.resolver, r.clients, r.countries) for r in rows],
    )


def render_table4(rows: Sequence[Table4Row],
                  depths: Sequence[int] = (1, 10, 100, 1000)) -> str:
    """Render Table 4 (logistic odds ratios) as text."""
    headers = ["variable", "level"] + [
        "OR" if n == 1 else "OR_{}".format(n) for n in depths
    ]
    body = []
    for row in rows:
        cells: List[str] = [row.variable, row.level]
        for n in depths:
            odds = row.odds_ratios.get(n)
            if odds is None:
                cells.append("-")
            else:
                cells.append(
                    "{:.2f}x{}".format(odds, _significance(
                        row.p_values.get(n, 1.0)))
                )
        body.append(cells)
    return (
        "Table 4: logistic model of DoH vs Do53 slowdowns "
        "(* = not significant at p<0.001)\n" + format_table(headers, body)
    )


def render_table5(rows: Sequence[Table5Row], title: str) -> str:
    """Render a Table 5/6-style coefficient block."""
    body = [
        (
            row.output,
            row.metric,
            "{:.4g}{}".format(row.coef, _significance(row.p_value)),
            "{:.1f}{}".format(row.scaled_coef, _significance(row.p_value)),
        )
        for row in rows
    ]
    return "{}\n{}".format(
        title,
        format_table(("output", "metric", "coef (ms)", "scaled coef (ms)"),
                     body),
    )


def render_ascii_cdf(
    curves: Dict[str, Sequence[tuple]],
    width: int = 64,
    height: int = 16,
    x_label: str = "ms",
    x_max: Optional[float] = None,
) -> str:
    """Render empirical CDF curves as an ASCII plot.

    *curves* maps a label to an ``[(x, F(x)), ...]`` series (the output
    of :func:`repro.stats.descriptive.empirical_cdf`).  Each curve gets
    a distinct marker; the y-axis spans 0..1.
    """
    markers = "coxs*+%@"
    live = {label: series for label, series in curves.items() if series}
    if not live:
        return "(no data)"
    if x_max is None:
        x_max = max(series[-1][0] for series in live.values())
    if x_max <= 0:
        x_max = 1.0
    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float):
        column = min(width - 1, int((x / x_max) * (width - 1)))
        row = min(height - 1, int((1.0 - y) * (height - 1)))
        return row, column

    legend = []
    for index, (label, series) in enumerate(sorted(live.items())):
        marker = markers[index % len(markers)]
        legend.append("{} = {}".format(marker, label))
        for x, y in series:
            if x > x_max:
                break
            row, column = cell(x, y)
            grid[row][column] = marker

    lines = []
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1)
        lines.append("{:>4.2f} |{}".format(fraction, "".join(row)))
    lines.append("     +" + "-" * width)
    lines.append("      0{}{:.0f} {}".format(
        " " * (width - len("{:.0f}".format(x_max)) - 2), x_max, x_label
    ))
    lines.append("      " + "   ".join(legend))
    return "\n".join(lines)


def render_figure3(data: ClientsPerCountry) -> str:
    """One-line summary of Figure 3's distribution."""
    return (
        "Figure 3: clients per analysed country — median {:.0f}, "
        ">=200 clients in {:.0%} of countries, range [{}, {}]".format(
            data.median_clients,
            data.share_with_200_plus,
            data.minimum,
            data.maximum,
        )
    )

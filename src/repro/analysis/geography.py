"""Per-country analyses (§5.3, Figures 5 and 7).

Country-level medians use every client in the country; Do53 medians in
the 11 super-proxy countries come from the RIPE Atlas samples, exactly
as the paper combines the two platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.slowdown import ClientProviderStat, client_provider_stats
from repro.dataset.store import Dataset
from repro.stats.descriptive import median

__all__ = [
    "CountryDelta",
    "country_deltas",
    "country_do53_medians",
    "country_doh_medians",
    "country_medians",
    "relative_country_slowdowns",
    "share_of_countries_benefiting",
]


def country_doh_medians(
    dataset: Dataset, provider: Optional[str] = None, metric: str = "doh1"
) -> Dict[str, float]:
    """Median DoH time per analysed country (Figure 5 map data).

    *metric* is ``"doh1"`` or ``"dohr"``.
    """
    if metric not in ("doh1", "dohr"):
        raise ValueError("metric must be doh1 or dohr")
    analyzed = set(dataset.analyzed_countries())
    grouped: Dict[str, List[float]] = {}
    for sample in dataset.successful_doh(provider):
        if sample.country not in analyzed:
            continue
        value = sample.t_doh_ms if metric == "doh1" else sample.t_dohr_ms
        grouped.setdefault(sample.country, []).append(value)
    return {
        country: median(values) for country, values in sorted(grouped.items())
    }


def country_do53_medians(dataset: Dataset) -> Dict[str, float]:
    """Median Do53 per analysed country (BrightData + Atlas merged)."""
    analyzed = set(dataset.analyzed_countries())
    grouped: Dict[str, List[float]] = {}
    for sample in dataset.valid_do53():
        if sample.country in analyzed:
            grouped.setdefault(sample.country, []).append(sample.time_ms)
    return {
        country: median(values) for country, values in sorted(grouped.items())
    }


def country_medians(dataset: Dataset) -> Tuple[float, float]:
    """(median country DoH1, median country Do53) — §5.3 headline.

    The paper reports the median *across countries* of each country's
    median resolution time (564.7ms DoH1 vs 332.9ms Do53).
    """
    doh = country_doh_medians(dataset)
    do53 = country_do53_medians(dataset)
    common = sorted(set(doh) & set(do53))
    if not common:
        raise ValueError("no countries with both DoH and Do53 medians")
    return (
        median([doh[c] for c in common]),
        median([do53[c] for c in common]),
    )


@dataclass(frozen=True)
class CountryDelta:
    """One country's Do53→DoH-N change for one provider (Figure 7)."""

    country: str
    provider: str
    doh_n_ms: float
    do53_ms: float
    n: int

    @property
    def delta_ms(self) -> float:
        return self.doh_n_ms - self.do53_ms

    @property
    def relative_change(self) -> float:
        return self.delta_ms / self.do53_ms if self.do53_ms > 0 else float("nan")


def country_deltas(
    dataset: Dataset,
    n: int = 10,
    stats: Optional[Sequence[ClientProviderStat]] = None,
) -> List[CountryDelta]:
    """Per-country, per-provider Do53→DoH-N deltas (Figure 7 data).

    Country DoH-N and Do53 are medians over the country's clients; the
    Do53 median falls back to Atlas samples where BrightData is blind.
    """
    if stats is None:
        stats = client_provider_stats(dataset)
    analyzed = set(dataset.analyzed_countries())
    do53_by_country = country_do53_medians(dataset)

    grouped: Dict[Tuple[str, str], List[float]] = {}
    for stat in stats:
        if stat.country in analyzed:
            grouped.setdefault((stat.country, stat.provider), []).append(
                stat.doh_n_ms(n)
            )
    # Countries with DoH but no per-client Do53 (super-proxy countries):
    # pull DoH-N from raw samples instead of client stats.
    doh_by_cp: Dict[Tuple[str, str], List[float]] = {}
    for sample in dataset.successful_doh():
        if sample.country in analyzed:
            from repro.core.doh_timing import doh_n as _doh_n

            doh_by_cp.setdefault(
                (sample.country, sample.provider), []
            ).append(_doh_n(sample.t_doh_ms, sample.t_dohr_ms, n))

    deltas: List[CountryDelta] = []
    for (country, provider), values in sorted(doh_by_cp.items()):
        if country not in do53_by_country:
            continue
        source = grouped.get((country, provider)) or values
        deltas.append(
            CountryDelta(
                country=country,
                provider=provider,
                doh_n_ms=median(source),
                do53_ms=do53_by_country[country],
                n=n,
            )
        )
    return deltas


def relative_country_slowdowns(
    dataset: Dataset, n: int = 10
) -> Dict[str, float]:
    """Median relative per-country slowdown per provider (§5.3).

    The paper: "DoH resolutions from Cloudflare cause the smallest
    performance hit by this metric, with the median country
    experiencing a relatively modest (19%) performance decrease
    compared to ... Quad9, Google, and NextDNS, who cause a 28%, 39%,
    and 47% performance decrease per country respectively."
    """
    deltas = country_deltas(dataset, n=n)
    grouped: Dict[str, List[float]] = {}
    for delta in deltas:
        grouped.setdefault(delta.provider, []).append(
            delta.relative_change
        )
    return {
        provider: median(values)
        for provider, values in sorted(grouped.items())
    }


def share_of_countries_benefiting(dataset: Dataset, n: int = 1) -> float:
    """Fraction of countries whose aggregate DoH-N beats Do53 (§5.3: 8.8%)."""
    doh = country_doh_medians(dataset, metric="doh1" if n == 1 else "dohr")
    if n != 1:
        raise ValueError("only n=1 is defined for the aggregate comparison")
    do53 = country_do53_medians(dataset)
    common = sorted(set(doh) & set(do53))
    if not common:
        return 0.0
    benefiting = sum(1 for c in common if doh[c] < do53[c])
    return benefiting / len(common)

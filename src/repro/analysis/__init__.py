"""Analysis: reproduces every table and figure of the paper.

* :mod:`repro.analysis.slowdown` — per-client DoH/Do53 aggregation,
  DoH-N, multipliers, headline statistics (§5, §6.2.1 outcome),
* :mod:`repro.analysis.providers` — provider comparison, Figure 4 CDFs,
  observed PoP counts (§5.2),
* :mod:`repro.analysis.geography` — per-country medians and deltas,
  Figure 5 and Figure 7 (§5.3),
* :mod:`repro.analysis.pops` — PoP distances and potential improvement,
  Figures 6 and 9,
* :mod:`repro.analysis.explain` — the Section 6 regressions (Tables
  4–6),
* :mod:`repro.analysis.failures` — per-provider / per-country failure
  rates (the availability companion to the latency results),
* :mod:`repro.analysis.figures` / :mod:`repro.analysis.tables` — one
  generator per paper artifact,
* :mod:`repro.analysis.report` — plain-text rendering.
"""

from repro.analysis.slowdown import (
    ClientProviderStat,
    HeadlineStats,
    client_provider_stats,
    headline_stats,
)
from repro.analysis.failures import (
    FailureRate,
    country_failure_rates,
    failure_reasons,
    provider_failure_rates,
    render_failure_report,
)
from repro.analysis.providers import ProviderSummary, provider_summaries
from repro.analysis.geography import (
    CountryDelta,
    country_deltas,
    country_medians,
)
from repro.analysis.pops import PopDistanceStats, pop_distance_stats
from repro.analysis.explain import (
    LinearDeltaResult,
    LogisticSlowdownResult,
    linear_delta_model,
    logistic_slowdown_model,
)

__all__ = [
    "ClientProviderStat",
    "CountryDelta",
    "FailureRate",
    "HeadlineStats",
    "LinearDeltaResult",
    "LogisticSlowdownResult",
    "PopDistanceStats",
    "ProviderSummary",
    "client_provider_stats",
    "country_deltas",
    "country_failure_rates",
    "country_medians",
    "failure_reasons",
    "headline_stats",
    "linear_delta_model",
    "logistic_slowdown_model",
    "pop_distance_stats",
    "provider_failure_rates",
    "provider_summaries",
    "render_failure_report",
]

"""PoP distance analyses (Figures 6 and 9).

"Potential improvement" (Figure 6) is the distance from a client to
the PoP that actually served it minus the distance to the closest PoP
*observed in the dataset* for the same provider.  Everything is
computed from dataset fields (client /24 geolocation, PoP /24
geolocation), not from simulator internals — the same information the
paper had.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.slowdown import ClientProviderStat, client_provider_stats
from repro.dataset.store import Dataset
from repro.geo.coords import KM_PER_MILE, LatLon, geodesic_km
from repro.stats.descriptive import empirical_cdf, median

__all__ = [
    "PopDistanceStats",
    "client_pop_distances",
    "pop_distance_stats",
    "potential_improvements",
]


def _client_locations(dataset: Dataset) -> Dict[str, LatLon]:
    return {
        client.node_id: LatLon(client.lat, client.lon)
        for client in dataset.clients
    }


def _observed_pop_sites(dataset: Dataset) -> Dict[str, List[LatLon]]:
    sites: Dict[str, set] = {}
    for sample in dataset.successful_doh():
        if sample.pop_lat is not None and sample.pop_lon is not None:
            sites.setdefault(sample.provider, set()).add(
                (sample.pop_lat, sample.pop_lon)
            )
    return {
        provider: [LatLon(lat, lon) for lat, lon in sorted(coords)]
        for provider, coords in sites.items()
    }


def client_pop_distances(
    dataset: Dataset, provider: str
) -> List[Tuple[str, float]]:
    """Figure 9: per client, miles to the PoP that served it."""
    locations = _client_locations(dataset)
    out: List[Tuple[str, float]] = []
    seen = set()
    for sample in dataset.successful_doh(provider):
        if sample.node_id in seen or sample.pop_lat is None:
            continue
        client_loc = locations.get(sample.node_id)
        if client_loc is None:
            continue
        seen.add(sample.node_id)
        pop_loc = LatLon(sample.pop_lat, sample.pop_lon)
        out.append(
            (sample.node_id, geodesic_km(client_loc, pop_loc) / KM_PER_MILE)
        )
    return out


def potential_improvements(
    dataset: Dataset, provider: str
) -> List[Tuple[str, float]]:
    """Figure 6: per client, miles of potential improvement."""
    locations = _client_locations(dataset)
    sites = _observed_pop_sites(dataset).get(provider, [])
    if not sites:
        return []
    out: List[Tuple[str, float]] = []
    seen = set()
    for sample in dataset.successful_doh(provider):
        if sample.node_id in seen or sample.pop_lat is None:
            continue
        client_loc = locations.get(sample.node_id)
        if client_loc is None:
            continue
        seen.add(sample.node_id)
        used = geodesic_km(client_loc, LatLon(sample.pop_lat, sample.pop_lon))
        nearest = min(geodesic_km(client_loc, site) for site in sites)
        out.append(
            (sample.node_id, max(0.0, used - nearest) / KM_PER_MILE)
        )
    return out


@dataclass(frozen=True)
class PopDistanceStats:
    """One provider's Figure 6 summary numbers."""

    provider: str
    clients: int
    median_improvement_miles: float
    share_nearest: float            # improvement == 0 (routed optimally)
    share_over_1000_miles: float    # paper: CF 26%, Google 10%
    median_distance_miles: float    # Figure 9 median

    def cdf(self, dataset: Dataset, points: int = 200):
        """The Figure-6 CDF series for this provider."""
        values = [miles for _, miles in potential_improvements(
            dataset, self.provider)]
        return empirical_cdf(values, points)


def pop_distance_stats(dataset: Dataset) -> List[PopDistanceStats]:
    """Per-provider PoP-distance summaries (Figures 6 and 9)."""
    out: List[PopDistanceStats] = []
    for provider in dataset.providers():
        improvements = [m for _, m in potential_improvements(dataset, provider)]
        distances = [m for _, m in client_pop_distances(dataset, provider)]
        if not improvements:
            continue
        out.append(
            PopDistanceStats(
                provider=provider,
                clients=len(improvements),
                median_improvement_miles=median(improvements),
                share_nearest=sum(1 for m in improvements if m < 1.0)
                / len(improvements),
                share_over_1000_miles=sum(
                    1 for m in improvements if m >= 1000.0
                )
                / len(improvements),
                median_distance_miles=median(distances)
                if distances
                else float("nan"),
            )
        )
    return out

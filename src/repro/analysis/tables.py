"""One generator per paper table.

Tables 1–2 require a :class:`GroundTruthHarness` (they are §4
experiments over controlled exit nodes); Tables 3–6 are pure dataset
analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.explain import (
    LinearDeltaResult,
    LogisticSlowdownResult,
    linear_delta_model,
    logistic_slowdown_model,
)
from repro.analysis.slowdown import client_provider_stats
from repro.core.groundtruth import GroundTruthHarness, GroundTruthRow
from repro.dataset.store import Dataset
from repro.geo.countries import IncomeGroup

__all__ = [
    "table1_groundtruth_doh",
    "table2_groundtruth_do53",
    "table3_dataset_composition",
    "table4_logistic",
    "table5_linear",
    "table6_linear_by_resolver",
]

#: The reuse depths Table 4 reports (OR, OR_10, OR_100, OR_1000).
TABLE4_DEPTHS = (1, 10, 100, 1000)
#: The outputs Table 5 reports (Delta, Delta 10, Delta 100).
TABLE5_DEPTHS = (1, 10, 100)


def table1_groundtruth_doh(
    harness: GroundTruthHarness, provider: str = "cloudflare"
) -> List[GroundTruthRow]:
    """Table 1: method-vs-truth DoH and DoHR medians per country."""
    return harness.validate_doh(provider)


def table2_groundtruth_do53(
    harness: GroundTruthHarness,
) -> List[GroundTruthRow]:
    """Table 2: method-vs-truth Do53 medians per country."""
    return harness.validate_do53()


@dataclass(frozen=True)
class CompositionRow:
    """One Table 3 row."""

    resolver: str
    clients: int
    countries: int


def table3_dataset_composition(dataset: Dataset) -> List[CompositionRow]:
    """Table 3: unique clients and countries per resolver."""
    rows = [
        CompositionRow(
            resolver=provider,
            clients=dataset.unique_clients(provider),
            countries=dataset.unique_countries(provider),
        )
        for provider in dataset.providers()
    ]
    rows.append(
        CompositionRow(
            resolver="do53 (default)",
            clients=dataset.unique_clients(),
            countries=dataset.unique_countries(),
        )
    )
    return rows


@dataclass(frozen=True)
class Table4Row:
    """One Table 4 row: odds ratios across reuse depths."""

    variable: str
    level: str
    odds_ratios: Dict[int, float]
    p_values: Dict[int, float]


_TABLE4_LEVELS = (
    ("bandwidth", "slow"),
    ("income", IncomeGroup.UPPER_MIDDLE),
    ("income", IncomeGroup.LOWER_MIDDLE),
    ("income", IncomeGroup.LOW),
    ("ases", "low"),
    ("resolver", "google"),
    ("resolver", "nextdns"),
    ("resolver", "quad9"),
)


def table4_logistic(
    dataset: Dataset,
    depths: Sequence[int] = TABLE4_DEPTHS,
) -> Tuple[List[Table4Row], Dict[int, LogisticSlowdownResult]]:
    """Table 4: the logistic slowdown model across reuse depths."""
    stats = client_provider_stats(dataset)
    models = {
        n: logistic_slowdown_model(dataset, n=n, stats=stats)
        for n in depths
    }
    rows: List[Table4Row] = []
    for variable, level in _TABLE4_LEVELS:
        odds: Dict[int, float] = {}
        pvals: Dict[int, float] = {}
        for n, result in models.items():
            try:
                odds[n] = result.odds_of_slowdown(variable, level)
                pvals[n] = result.p_value(variable, level)
            except KeyError:
                continue
        if odds:
            rows.append(
                Table4Row(
                    variable=variable, level=level,
                    odds_ratios=odds, p_values=pvals,
                )
            )
    return rows, models


@dataclass(frozen=True)
class Table5Row:
    """One Table 5/6 row: a metric's raw and scaled coefficients."""

    output: str   # "delta", "delta10", "delta100"
    metric: str   # gdp / bandwidth / num_ases / nameserver_dist / resolver_dist
    coef: float
    scaled_coef: float
    p_value: float


_TABLE5_METRICS = (
    "gdp",
    "bandwidth",
    "num_ases",
    "nameserver_dist",
    "resolver_dist",
)


def table5_linear(
    dataset: Dataset,
    depths: Sequence[int] = TABLE5_DEPTHS,
) -> Tuple[List[Table5Row], Dict[int, LinearDeltaResult]]:
    """Table 5: the linear delta model for 1/10/100 reuse depths."""
    stats = client_provider_stats(dataset)
    models = {
        n: linear_delta_model(dataset, n=n, stats=stats) for n in depths
    }
    rows: List[Table5Row] = []
    for n, result in models.items():
        label = "delta" if n == 1 else "delta{}".format(n)
        for metric in _TABLE5_METRICS:
            rows.append(
                Table5Row(
                    output=label,
                    metric=metric,
                    coef=result.coefficient(metric),
                    scaled_coef=result.scaled_coefficient(metric),
                    p_value=result.p_value(metric),
                )
            )
    return rows, models


def table6_linear_by_resolver(
    dataset: Dataset,
) -> Tuple[List[Table5Row], Dict[str, LinearDeltaResult]]:
    """Table 6: per-resolver linear models of the DoH1 delta."""
    stats = client_provider_stats(dataset)
    models: Dict[str, LinearDeltaResult] = {}
    rows: List[Table5Row] = []
    for provider in dataset.providers():
        result = linear_delta_model(dataset, n=1, provider=provider,
                                    stats=stats)
        models[provider] = result
        for metric in _TABLE5_METRICS:
            rows.append(
                Table5Row(
                    output=provider,
                    metric=metric,
                    coef=result.coefficient(metric),
                    scaled_coef=result.scaled_coefficient(metric),
                    p_value=result.p_value(metric),
                )
            )
    return rows, models

"""Phase-level latency decomposition from recorded traces.

Equation 7 collapses a DoH measurement into a single number; a trace
keeps the terms.  This module re-derives the paper's quantities *from
the trace alone* and reconciles them against the exported dataset:

* ``exit_dns`` + ``exit_tcp_connect`` — (t3+t4) and (t5+t6), straight
  from the tun-timeline header,
* ``tls_roundtrip`` — the client-observed TLS handshake time minus one
  client↔exit round trip (Equation 6), i.e. (t11+t12),
* ``query_roundtrip`` — the client-observed query exchange minus one
  round trip, i.e. (t17..t20).

Their sum equals Equation 7's t_DoH *identically* (the same header
values feed both derivations), so ``reconcile_with_dataset`` holding
within float tolerance is a strong end-to-end consistency check of
client, proxy stack and dataset builder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.dataset.store import Dataset
from repro.obs.trace import DO53_PROVIDER_KEY, SampleTrace

__all__ = [
    "DOH_PHASES",
    "PhaseAggregate",
    "ReconcileReport",
    "doh_phases",
    "do53_phases",
    "phase_breakdown",
    "phase_summary",
    "reconcile_with_dataset",
    "render_phase_table",
    "trace_rtt",
    "trace_t_doh",
]

#: Canonical DoH phase order (matches the paper's t1–t20 timeline).
DOH_PHASES = (
    "exit_dns",
    "exit_tcp_connect",
    "tls_roundtrip",
    "query_roundtrip",
)


def trace_rtt(trace: SampleTrace) -> Optional[float]:
    """Equation 6 from the trace: client↔exit RTT via the Super Proxy.

    ``tunnel_setup − (exit_dns + exit_tcp_connect) − t_BrightData``.
    None when the trace is missing the tunnel phase (failed sample).
    """
    tunnel = trace.event("tunnel_setup")
    dns = trace.event("exit_dns")
    connect = trace.event("exit_tcp_connect")
    if tunnel is None or dns is None or connect is None:
        return None
    brightdata = trace.duration_from("superproxy")
    return tunnel.duration_ms - dns.duration_ms - connect.duration_ms \
        - brightdata


def doh_phases(trace: SampleTrace) -> Optional[Dict[str, float]]:
    """The four-phase decomposition of one DoH trace, or None.

    None when the measurement failed before the phases existed (no
    handshake, no tunnel).  Keys follow :data:`DOH_PHASES`; the values
    sum to Equation 7's t_DoH.
    """
    rtt = trace_rtt(trace)
    handshake = trace.event("tls_handshake")
    exchange = trace.event("query_exchange")
    if rtt is None or handshake is None or exchange is None:
        return None
    return {
        "exit_dns": trace.event("exit_dns").duration_ms,
        "exit_tcp_connect": trace.event("exit_tcp_connect").duration_ms,
        "tls_roundtrip": handshake.duration_ms - rtt,
        "query_roundtrip": exchange.duration_ms - rtt,
    }


def do53_phases(trace: SampleTrace) -> Optional[Dict[str, float]]:
    """The (single-phase) decomposition of one Do53 trace, or None."""
    dns = trace.event("exit_dns")
    if dns is None:
        return None
    return {"exit_dns": dns.duration_ms}


def trace_t_doh(trace: SampleTrace) -> Optional[float]:
    """t_DoH re-derived purely from the trace (sum of its phases)."""
    phases = doh_phases(trace)
    if phases is None:
        return None
    return sum(phases.values())


@dataclass
class PhaseAggregate:
    """Aggregate of one phase across a set of traces."""

    phase: str
    count: int
    total_ms: float
    min_ms: float
    max_ms: float

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def to_json(self) -> Dict:
        """Plain-dict form for run manifests."""
        return {
            "phase": self.phase,
            "count": self.count,
            "mean_ms": round(self.mean_ms, 3),
            "min_ms": round(self.min_ms, 3),
            "max_ms": round(self.max_ms, 3),
        }


def _aggregate(per_trace: Iterable[Dict[str, float]],
               order: Iterable[str]) -> List[PhaseAggregate]:
    aggregates: Dict[str, PhaseAggregate] = {}
    for phases in per_trace:
        for name, value in phases.items():
            entry = aggregates.get(name)
            if entry is None:
                aggregates[name] = PhaseAggregate(
                    phase=name, count=1, total_ms=value,
                    min_ms=value, max_ms=value,
                )
            else:
                entry.count += 1
                entry.total_ms += value
                entry.min_ms = min(entry.min_ms, value)
                entry.max_ms = max(entry.max_ms, value)
    ordered = [name for name in order if name in aggregates]
    ordered += sorted(set(aggregates) - set(ordered))
    return [aggregates[name] for name in ordered]


def phase_breakdown(
    traces: Iterable[SampleTrace],
) -> Dict[str, List[PhaseAggregate]]:
    """Per-provider phase aggregates (Do53 under ``"do53"``).

    Only successful traces with a full decomposition contribute.
    """
    per_provider: Dict[str, List[Dict[str, float]]] = {}
    for trace in traces:
        if not trace.success:
            continue
        if trace.kind == "doh":
            phases = doh_phases(trace)
        else:
            phases = do53_phases(trace)
        if phases is not None:
            per_provider.setdefault(trace.provider, []).append(phases)
    return {
        provider: _aggregate(per_provider[provider], DOH_PHASES)
        for provider in sorted(per_provider)
    }


def phase_summary(traces: Iterable[SampleTrace]) -> Dict:
    """JSON-ready per-provider phase aggregates (for run manifests)."""
    return {
        provider: [aggregate.to_json() for aggregate in aggregates]
        for provider, aggregates in phase_breakdown(traces).items()
    }


@dataclass
class ReconcileReport:
    """Outcome of checking traces against the exported dataset."""

    checked: int
    missing_traces: int
    #: ``(node_id, provider, run_index, |phase sum − t_doh_ms|)`` for
    #: every sample beyond tolerance.
    mismatches: List[tuple]
    worst_diff_ms: float

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        """One-line human summary of the reconciliation outcome."""
        status = "OK" if self.ok else "MISMATCH"
        return (
            "phase reconciliation {}: {} samples checked, "
            "{} missing traces, worst diff {:.3g} ms, "
            "{} beyond tolerance".format(
                status, self.checked, self.missing_traces,
                self.worst_diff_ms, len(self.mismatches),
            )
        )


def reconcile_with_dataset(
    traces,
    dataset: Dataset,
    tolerance_ms: float = 1e-6,
) -> ReconcileReport:
    """Check that per-sample phase sums reproduce the dataset's t_DoH.

    *traces* is a :class:`~repro.obs.trace.TraceRecorder` (anything
    with ``get(node_id, provider, run_index)``).  Every successful DoH
    sample's ``t_doh_ms`` must equal the sum of its trace's phases
    within *tolerance_ms*; Do53 samples must match their ``exit_dns``
    phase.  Atlas samples have no trace and are skipped.
    """
    checked = 0
    missing = 0
    mismatches: List[tuple] = []
    worst = 0.0

    for sample in dataset.doh:
        if not sample.success or sample.t_doh_ms is None:
            continue
        trace = traces.get(sample.node_id, sample.provider, sample.run_index)
        derived = trace_t_doh(trace) if trace is not None else None
        if derived is None:
            missing += 1
            continue
        checked += 1
        diff = abs(derived - sample.t_doh_ms)
        worst = max(worst, diff)
        if diff > tolerance_ms:
            mismatches.append(
                (sample.node_id, sample.provider, sample.run_index, diff)
            )

    for sample in dataset.do53:
        if not sample.success or sample.source != "brightdata":
            continue
        if sample.time_ms is None:
            continue
        trace = traces.get(sample.node_id, DO53_PROVIDER_KEY,
                           sample.run_index)
        phases = do53_phases(trace) if trace is not None else None
        if phases is None:
            missing += 1
            continue
        checked += 1
        diff = abs(phases["exit_dns"] - sample.time_ms)
        worst = max(worst, diff)
        if diff > tolerance_ms:
            mismatches.append(
                (sample.node_id, DO53_PROVIDER_KEY, sample.run_index, diff)
            )

    return ReconcileReport(
        checked=checked,
        missing_traces=missing,
        mismatches=mismatches,
        worst_diff_ms=worst,
    )


def render_phase_table(
    breakdown: Dict[str, List[PhaseAggregate]],
) -> List[str]:
    """Plain-text lines for ``analyze --artifact phases``."""
    lines = [
        "Per-phase latency breakdown (mean ms over successful samples)",
        "",
        "{:<12} {:<18} {:>7} {:>10} {:>10} {:>10}".format(
            "provider", "phase", "n", "mean", "min", "max"
        ),
    ]
    for provider, aggregates in breakdown.items():
        for aggregate in aggregates:
            lines.append(
                "{:<12} {:<18} {:>7} {:>10.3f} {:>10.3f} {:>10.3f}".format(
                    provider,
                    aggregate.phase,
                    aggregate.count,
                    aggregate.mean_ms,
                    aggregate.min_ms,
                    aggregate.max_ms,
                )
            )
    if len(lines) == 3:
        lines.append("(no successful traces)")
    return lines

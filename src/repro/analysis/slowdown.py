"""Per-client DoH/Do53 aggregation and the paper's headline numbers.

A *client-provider stat* merges a client's runs against one provider
(median t_DoH, median t_DoHR) with the client's own Do53 median, and
derives the paper's composite metrics:

* ``DoH-N`` — average per-query time when N queries share one TLS
  session (§5 "Terminology"),
* the Do53→DoH-N *multiplier* (§6.2.1) and raw *delta* (§6.2.2).

Clients in the 11 super-proxy countries have no valid per-client Do53
and are excluded from these comparisons, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.doh_timing import doh_n
from repro.dataset.store import Dataset
from repro.stats.descriptive import median

__all__ = [
    "ClientProviderStat",
    "HeadlineStats",
    "client_provider_stats",
    "headline_stats",
    "global_median_multipliers",
    "speedup_population_profile",
]

#: Connection-reuse depths the paper analyses.
REUSE_DEPTHS = (1, 10, 100, 1000)


@dataclass(frozen=True)
class ClientProviderStat:
    """One (client, provider) pair's aggregated measurements."""

    node_id: str
    country: str
    provider: str
    doh1_ms: float   # median t_DoH over runs
    dohr_ms: float   # median t_DoHR over runs
    do53_ms: float   # median Do53 over runs (client's default resolver)
    #: Geolocation of the PoP that served this client (if observed).
    pop_lat: Optional[float] = None
    pop_lon: Optional[float] = None

    def doh_n_ms(self, n: int) -> float:
        """Average per-query DoH time over *n* queries (DoH-N)."""
        return doh_n(self.doh1_ms, self.dohr_ms, n)

    def multiplier(self, n: int) -> float:
        """DoH-N over Do53 (the §6.2.1 outcome)."""
        if self.do53_ms <= 0:
            raise ValueError("non-positive Do53 baseline")
        return self.doh_n_ms(n) / self.do53_ms

    def delta(self, n: int) -> float:
        """DoH-N minus Do53, ms (the §6.2.2 outcome)."""
        return self.doh_n_ms(n) - self.do53_ms

    @property
    def speedup_doh1(self) -> bool:
        """Did this client get faster on the very first DoH query?"""
        return self.doh1_ms < self.do53_ms


def client_provider_stats(dataset: Dataset) -> List[ClientProviderStat]:
    """Aggregate the dataset into client-provider stats.

    Only clients with at least one valid BrightData Do53 sample
    contribute (per-client comparisons are impossible in super-proxy
    countries, §3.5).
    """
    do53_by_node: Dict[str, List[float]] = {}
    for sample in dataset.valid_do53(source="brightdata"):
        do53_by_node.setdefault(sample.node_id, []).append(sample.time_ms)

    grouped: Dict[Tuple[str, str], List] = {}
    for sample in dataset.successful_doh():
        grouped.setdefault((sample.node_id, sample.provider), []).append(sample)

    stats: List[ClientProviderStat] = []
    for (node_id, provider), samples in sorted(grouped.items()):
        baseline = do53_by_node.get(node_id)
        if not baseline:
            continue
        pop_samples = [s for s in samples if s.pop_lat is not None]
        stats.append(
            ClientProviderStat(
                node_id=node_id,
                country=samples[0].country,
                provider=provider,
                doh1_ms=median([s.t_doh_ms for s in samples]),
                dohr_ms=median([s.t_dohr_ms for s in samples]),
                do53_ms=median(baseline),
                pop_lat=pop_samples[0].pop_lat if pop_samples else None,
                pop_lon=pop_samples[0].pop_lon if pop_samples else None,
            )
        )
    return stats


def global_median_multipliers(
    stats: Sequence[ClientProviderStat],
    depths: Sequence[int] = REUSE_DEPTHS,
) -> Dict[int, float]:
    """Global median Do53→DoH-N multipliers (paper: 1.84/1.24/1.18/1.17)."""
    return {
        n: median([s.multiplier(n) for s in stats]) for n in depths
    }


def speedup_population_profile(
    stats: Sequence[ClientProviderStat], n: int = 10
) -> Dict[str, float]:
    """Who are the clients that DoH makes faster? (§6.2.1)

    The paper: of the clients that see a DoH *speedup*, 84% are in
    countries with fast nationwide Internet and 93% in countries with
    above-median AS counts.  Returns those two shares for the clients
    whose DoH-``n`` beats their Do53.
    """
    from repro.geo.countries import COUNTRIES

    import statistics as _statistics

    as_median = _statistics.median(
        country.num_ases for country in COUNTRIES.values()
    )
    winners = [s for s in stats if s.delta(n) < 0]
    if not winners or not stats:
        return {"share_fast_internet": 0.0, "share_high_ases": 0.0,
                "winners": 0, "lift_fast_internet": 0.0,
                "lift_high_ases": 0.0}

    def _shares(population):
        fast = sum(
            1 for s in population if COUNTRIES[s.country].fast_internet
        )
        high = sum(
            1 for s in population
            if COUNTRIES[s.country].num_ases > as_median
        )
        return fast / len(population), high / len(population)

    winner_fast, winner_high = _shares(winners)
    base_fast, base_high = _shares(list(stats))
    return {
        "share_fast_internet": winner_fast,
        "share_high_ases": winner_high,
        "winners": len(winners),
        # Lift over the base population: >1 means the speedup clients
        # are concentrated in well-connected countries, as the paper
        # observes.
        "lift_fast_internet": winner_fast / base_fast if base_fast else 0.0,
        "lift_high_ases": winner_high / base_high if base_high else 0.0,
    }


@dataclass(frozen=True)
class HeadlineStats:
    """The §5/§1 headline numbers."""

    median_doh1_ms: float
    median_dohr_ms: float
    median_do53_ms: float
    median_delta10_ms: float
    share_speedup_doh1: float
    share_speedup_doh10: float
    share_tripled_doh1: float
    median_multipliers: Dict[int, float]
    n_client_provider_pairs: int


def headline_stats(dataset: Dataset) -> HeadlineStats:
    """Compute the paper's headline statistics from a dataset."""
    stats = client_provider_stats(dataset)
    if not stats:
        raise ValueError("no comparable client-provider pairs in dataset")
    doh1 = [s.doh1_ms for s in stats]
    dohr = [s.dohr_ms for s in stats]
    do53_all = [s.time_ms for s in dataset.valid_do53()]
    return HeadlineStats(
        median_doh1_ms=median(doh1),
        median_dohr_ms=median(dohr),
        median_do53_ms=median(do53_all),
        median_delta10_ms=median([s.delta(10) for s in stats]),
        share_speedup_doh1=sum(1 for s in stats if s.speedup_doh1)
        / len(stats),
        share_speedup_doh10=sum(1 for s in stats if s.delta(10) < 0)
        / len(stats),
        share_tripled_doh1=sum(1 for s in stats if s.multiplier(1) >= 3.0)
        / len(stats),
        median_multipliers=global_median_multipliers(stats),
        n_client_provider_pairs=len(stats),
    )

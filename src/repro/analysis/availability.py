"""Availability / SLO analysis over a multi-epoch longitudinal dataset.

The longitudinal service (:mod:`repro.service`) accumulates one
dataset across epochs; every sample's ``run_index`` encodes which
epoch produced it (epoch ``N`` spans run indices ``[N *
runs_per_epoch, (N+1) * runs_per_epoch)``).  This module recovers the
availability story from those samples alone — it never looks at the
fault schedule, so the MTTR/MTBF numbers are *measured*, and tests can
cross-check them against the injected outages:

* per-provider per-epoch success rate and p95/p99 response-time drift,
* an error taxonomy per provider (reusing the failure categoriser of
  :mod:`repro.analysis.failures`),
* outage episodes — maximal runs of consecutive degraded epochs —
  with MTTR (mean epochs to repair) and MTBF (mean epochs between
  episode starts),
* an SLO verdict per provider against a target availability.

:func:`availability_report` returns a plain dict that is **free of
timestamps and environment detail** by design: the service byte-diffs
the rendered ``<out>.availability.json`` artifact across
crash/resume/worker-count variations, so everything in it must be a
pure function of the dataset and the report parameters.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.failures import _categorise
from repro.analysis.report import format_table
from repro.dataset.store import Dataset

__all__ = [
    "availability_report",
    "epoch_of_sample",
    "outage_episodes",
    "render_availability_table",
]

#: An epoch counts as degraded (inside an outage episode) when the
#: provider's success rate falls to this level or below — or when the
#: provider produced no samples at all.
DEGRADED_THRESHOLD = 0.5


def epoch_of_sample(run_index: int, runs_per_epoch: int) -> int:
    """Which epoch produced a sample with this ``run_index``."""
    if runs_per_epoch < 1:
        raise ValueError("runs_per_epoch must be >= 1")
    return run_index // runs_per_epoch


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted *sorted_values*."""
    if not sorted_values:
        raise ValueError("no values")
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def outage_episodes(
    degraded: Sequence[bool],
) -> List[Tuple[int, int]]:
    """Maximal runs of consecutive degraded epochs.

    Returns ``(start_epoch, end_epoch)`` pairs, *end* exclusive —
    episode ``(2, 4)`` means epochs 2 and 3 were degraded and epoch 4
    was healthy again (or past the end of the observation window).
    """
    episodes: List[Tuple[int, int]] = []
    start: Optional[int] = None
    for epoch, bad in enumerate(degraded):
        if bad and start is None:
            start = epoch
        elif not bad and start is not None:
            episodes.append((start, epoch))
            start = None
    if start is not None:
        episodes.append((start, len(degraded)))
    return episodes


def _mttr_mtbf(
    episodes: Sequence[Tuple[int, int]],
) -> Tuple[Optional[float], Optional[float]]:
    """Mean time (in epochs) to repair, and between failures.

    MTTR is the mean episode length; MTBF is the mean gap between
    consecutive episode *starts* (None with fewer than two episodes).
    """
    if not episodes:
        return None, None
    mttr = sum(end - start for start, end in episodes) / len(episodes)
    if len(episodes) < 2:
        return round(mttr, 6), None
    starts = [start for start, _end in episodes]
    gaps = [b - a for a, b in zip(starts, starts[1:])]
    return round(mttr, 6), round(sum(gaps) / len(gaps), 6)


def availability_report(
    dataset: Dataset,
    runs_per_epoch: int,
    epochs: Optional[int] = None,
    slo_target: float = 0.99,
    degraded_threshold: float = DEGRADED_THRESHOLD,
    providers: Optional[Sequence[str]] = None,
) -> Dict:
    """The availability/SLO artifact for a multi-epoch dataset.

    *epochs* fixes the observation window (defaults to the highest
    epoch seen in the data plus one); *providers* fixes the provider
    universe so a provider dark for the whole window still gets a row
    (all-``n/a``) instead of vanishing from the report.
    """
    if runs_per_epoch < 1:
        raise ValueError("runs_per_epoch must be >= 1")
    if epochs is not None and epochs < 1:
        raise ValueError("epochs must be >= 1")

    # Group DoH attempts by (provider, epoch).
    by_provider: Dict[str, Dict[int, List]] = {}
    max_epoch = -1
    for sample in dataset.doh:
        epoch = epoch_of_sample(sample.run_index, runs_per_epoch)
        max_epoch = max(max_epoch, epoch)
        by_provider.setdefault(sample.provider, {}).setdefault(
            epoch, []
        ).append(sample)
    if epochs is None:
        epochs = max_epoch + 1 if max_epoch >= 0 else 1

    universe = sorted(
        set(providers) if providers is not None else set(by_provider)
    )

    report: Dict = {
        "epochs": epochs,
        "runs_per_epoch": runs_per_epoch,
        "slo_target": slo_target,
        "degraded_threshold": degraded_threshold,
        "providers": {},
    }

    for provider in universe:
        per_epoch_samples = by_provider.get(provider, {})
        per_epoch: List[Dict] = []
        degraded: List[bool] = []
        attempts_total = 0
        failures_total = 0
        taxonomy: Dict[str, int] = {}

        for epoch in range(epochs):
            samples = per_epoch_samples.get(epoch, [])
            attempts = len(samples)
            failures = sum(1 for s in samples if not s.success)
            attempts_total += attempts
            failures_total += failures
            for sample in samples:
                if not sample.success:
                    category = _categorise(sample.error)
                    taxonomy[category] = taxonomy.get(category, 0) + 1
            times = sorted(
                s.t_doh_ms for s in samples
                if s.success and s.t_doh_ms is not None
            )
            if attempts:
                success_rate = round((attempts - failures) / attempts, 6)
            else:
                success_rate = None  # renders as "n/a"
            entry = {
                "epoch": epoch,
                "attempts": attempts,
                "failures": failures,
                "success_rate": success_rate,
                "p95_ms": (
                    round(_percentile(times, 0.95), 3) if times else None
                ),
                "p99_ms": (
                    round(_percentile(times, 0.99), 3) if times else None
                ),
            }
            per_epoch.append(entry)
            degraded.append(
                attempts == 0 or (success_rate or 0.0) <= degraded_threshold
            )

        episodes = outage_episodes(degraded)
        mttr, mtbf = _mttr_mtbf(episodes)
        availability = (
            round((attempts_total - failures_total) / attempts_total, 6)
            if attempts_total else None
        )
        report["providers"][provider] = {
            "availability": availability,
            "slo_met": (
                availability is not None and availability >= slo_target
            ),
            "attempts": attempts_total,
            "failures": failures_total,
            "per_epoch": per_epoch,
            "error_taxonomy": dict(sorted(taxonomy.items())),
            "outages": [
                {
                    "start_epoch": start,
                    "end_epoch": end,
                    "epochs": end - start,
                }
                for start, end in episodes
            ],
            "mttr_epochs": mttr,
            "mtbf_epochs": mtbf,
        }
    return report


def _fmt_rate(value: Optional[float]) -> str:
    return "n/a" if value is None else "{:.2%}".format(value)


def _fmt_ms(value: Optional[float]) -> str:
    return "n/a" if value is None else "{:.1f}".format(value)


def _fmt_epochs(value: Optional[float]) -> str:
    return "n/a" if value is None else "{:.2f}".format(value)


def render_availability_table(report: Dict) -> str:
    """Plain-text SLO table for one :func:`availability_report`."""
    sections = [
        "Availability over {} epoch(s) x {} run(s), SLO target "
        "{:.2%}".format(
            report["epochs"], report["runs_per_epoch"],
            report["slo_target"],
        )
    ]
    rows = []
    for provider, entry in sorted(report["providers"].items()):
        worst = min(
            entry["per_epoch"],
            key=lambda e: (
                -1.0 if e["success_rate"] is None else e["success_rate"]
            ),
            default=None,
        )
        top_error = "-"
        if entry["error_taxonomy"]:
            top_error = max(
                sorted(entry["error_taxonomy"].items()),
                key=lambda item: item[1],
            )[0]
        rows.append((
            provider,
            _fmt_rate(entry["availability"]),
            "yes" if entry["slo_met"] else "NO",
            "e{} {}".format(
                worst["epoch"], _fmt_rate(worst["success_rate"])
            ) if worst is not None else "n/a",
            str(len(entry["outages"])),
            _fmt_epochs(entry["mttr_epochs"]),
            _fmt_epochs(entry["mtbf_epochs"]),
            top_error,
        ))
    sections.append(format_table(
        ("provider", "availability", "SLO", "worst epoch",
         "outages", "MTTR", "MTBF", "top error"),
        rows or [("(no providers)", "-", "-", "-", "-", "-", "-", "-")],
    ))

    drift_rows = []
    for provider, entry in sorted(report["providers"].items()):
        for epoch_entry in entry["per_epoch"]:
            drift_rows.append((
                provider,
                epoch_entry["epoch"],
                epoch_entry["attempts"],
                _fmt_rate(epoch_entry["success_rate"]),
                _fmt_ms(epoch_entry["p95_ms"]),
                _fmt_ms(epoch_entry["p99_ms"]),
            ))
    sections.append("")
    sections.append("Per-epoch drift")
    sections.append(format_table(
        ("provider", "epoch", "attempts", "success", "p95 ms", "p99 ms"),
        drift_rows or [("(none)", "-", "-", "-", "-", "-")],
    ))
    return "\n".join(sections)

"""Provider comparison (§5.2, Figure 4).

Summarises each provider's resolution-time distributions (DoH1, DoHR)
against the Do53 baseline, and counts *observed* PoPs — unique
recursive-resolver prefixes seen at the authoritative server, which is
exactly how the paper enumerated provider infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.dataset.store import Dataset
from repro.stats.descriptive import empirical_cdf, median

__all__ = ["ProviderSummary", "observed_pops", "provider_summaries",
           "resolution_time_cdfs"]


@dataclass(frozen=True)
class ProviderSummary:
    """One provider's §5.2 numbers."""

    provider: str
    median_doh1_ms: float
    median_dohr_ms: float
    median_do53_ms: float
    observed_pops: int
    samples: int

    @property
    def dohr_vs_do53_ms(self) -> float:
        """How much a reused-connection query trails Do53 (can be <0)."""
        return self.median_dohr_ms - self.median_do53_ms


def observed_pops(dataset: Dataset, provider: str) -> Set[Tuple[float, float]]:
    """Distinct PoP sites observed for *provider* (geolocated /24s)."""
    sites: Set[Tuple[float, float]] = set()
    for sample in dataset.successful_doh(provider):
        if sample.pop_lat is not None and sample.pop_lon is not None:
            sites.add((sample.pop_lat, sample.pop_lon))
    return sites


def provider_summaries(dataset: Dataset) -> List[ProviderSummary]:
    """Per-provider medians and observed PoP counts."""
    do53 = [s.time_ms for s in dataset.valid_do53()]
    do53_median = median(do53) if do53 else float("nan")
    summaries: List[ProviderSummary] = []
    for provider in dataset.providers():
        samples = dataset.successful_doh(provider)
        if not samples:
            continue
        summaries.append(
            ProviderSummary(
                provider=provider,
                median_doh1_ms=median([s.t_doh_ms for s in samples]),
                median_dohr_ms=median([s.t_dohr_ms for s in samples]),
                median_do53_ms=do53_median,
                observed_pops=len(observed_pops(dataset, provider)),
                samples=len(samples),
            )
        )
    return summaries


def resolution_time_cdfs(
    dataset: Dataset, points: int = 200
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """Figure 4: per-provider CDFs of DoH1 and DoHR, plus Do53.

    Returns ``{provider: {"doh1": [...], "dohr": [...], "do53": [...]}}``
    where each series is a list of (ms, cumulative fraction) pairs.
    """
    do53_series = empirical_cdf(
        [s.time_ms for s in dataset.valid_do53()], points
    )
    figures: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for provider in dataset.providers():
        samples = dataset.successful_doh(provider)
        figures[provider] = {
            "doh1": empirical_cdf([s.t_doh_ms for s in samples], points),
            "dohr": empirical_cdf([s.t_dohr_ms for s in samples], points),
            "do53": do53_series,
        }
    return figures

"""One generator per paper figure.

Each function returns plain data structures (lists, dicts, tuples) that
a plotting script could draw directly; the benchmark harness prints the
series the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.geography import (
    country_deltas,
    country_do53_medians,
    country_doh_medians,
)
from repro.analysis.pops import client_pop_distances, potential_improvements
from repro.analysis.providers import observed_pops, resolution_time_cdfs
from repro.dataset.store import Dataset
from repro.stats.descriptive import empirical_cdf, median

__all__ = [
    "figure3_clients_per_country",
    "figure4_resolution_cdfs",
    "figure5_country_medians",
    "figure6_potential_improvement",
    "figure7_delta_by_resolver",
    "figure8_client_map",
    "figure9_client_pop_distance",
]


@dataclass(frozen=True)
class ClientsPerCountry:
    """Figure 3 data."""

    counts: Dict[str, int]
    median_clients: float
    share_with_200_plus: float
    minimum: int
    maximum: int


def figure3_clients_per_country(dataset: Dataset) -> ClientsPerCountry:
    """Figure 3: distribution of analysed clients per country.

    The paper reports a median of 103 unique clients per country with
    at least 200 clients in 17% of countries.
    """
    analyzed = set(dataset.analyzed_countries())
    counts = {
        country: count
        for country, count in dataset.clients_per_country().items()
        if country in analyzed
    }
    if not counts:
        raise ValueError("no analysed countries in dataset")
    values = sorted(counts.values())
    return ClientsPerCountry(
        counts=counts,
        median_clients=median([float(v) for v in values]),
        share_with_200_plus=sum(1 for v in values if v >= 200) / len(values),
        minimum=values[0],
        maximum=values[-1],
    )


def figure4_resolution_cdfs(
    dataset: Dataset, points: int = 200
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """Figure 4: DoH1/DoHR/Do53 CDFs per provider."""
    return resolution_time_cdfs(dataset, points)


@dataclass(frozen=True)
class CountryMedianMap:
    """Figure 5 data for one provider."""

    provider: str
    medians_ms: Dict[str, float]
    pop_sites: List[Tuple[float, float]]

    @property
    def pop_count(self) -> int:
        return len(self.pop_sites)


def figure5_country_medians(dataset: Dataset) -> List[CountryMedianMap]:
    """Figure 5: per-country median DoH time + PoP sites, per provider."""
    maps: List[CountryMedianMap] = []
    for provider in dataset.providers():
        maps.append(
            CountryMedianMap(
                provider=provider,
                medians_ms=country_doh_medians(dataset, provider),
                pop_sites=sorted(observed_pops(dataset, provider)),
            )
        )
    return maps


def figure6_potential_improvement(
    dataset: Dataset, points: int = 200
) -> Dict[str, List[Tuple[float, float]]]:
    """Figure 6: CDF of potential PoP improvement (miles) per provider."""
    curves: Dict[str, List[Tuple[float, float]]] = {}
    for provider in dataset.providers():
        miles = [m for _, m in potential_improvements(dataset, provider)]
        if miles:
            curves[provider] = empirical_cdf(miles, points)
    return curves


def figure7_delta_by_resolver(
    dataset: Dataset, n: int = 10
) -> Dict[str, List[float]]:
    """Figure 7: per-country Do53→DoH-N delta distribution per provider."""
    deltas = country_deltas(dataset, n=n)
    grouped: Dict[str, List[float]] = {}
    for delta in deltas:
        grouped.setdefault(delta.provider, []).append(delta.delta_ms)
    return {provider: sorted(values) for provider, values in grouped.items()}


def figure8_client_map(dataset: Dataset) -> List[Tuple[float, float, str]]:
    """Figure 8: every client's (lat, lon, country)."""
    return [
        (client.lat, client.lon, client.country)
        for client in dataset.clients
    ]


def figure9_client_pop_distance(
    dataset: Dataset,
) -> Dict[str, List[Tuple[str, float]]]:
    """Figure 9: per-client miles to the servicing PoP, per provider."""
    return {
        provider: client_pop_distances(dataset, provider)
        for provider in dataset.providers()
    }

"""Failure-rate analysis (the paper's availability companion numbers).

The paper reports per-provider failure rates alongside latency, and
related work (Sharma et al.; Hounsel et al.) makes resolver
*availability* a first-class result.  This module computes those rates
from the processed dataset: every sample — successful or not — is an
attempt, and ``success=False`` samples are the failures, carrying the
error string the measurement recorded.

Only BrightData-sourced Do53 samples count toward Do53 rates: RIPE
Atlas supplements only ship successful resolutions, so including them
would undercount.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.dataset.store import Dataset

__all__ = [
    "FailureRate",
    "country_failure_rates",
    "failure_reasons",
    "provider_failure_rates",
    "render_failure_report",
]


@dataclass(frozen=True)
class FailureRate:
    """Attempt/failure counts for one key (provider or country)."""

    key: str
    attempts: int
    failures: int

    @property
    def rate(self) -> float:
        """Failure fraction; 0.0 for a zero-attempt group (use
        :attr:`rate_display` when rendering — an unmeasured group is
        "n/a", not a perfect score)."""
        return self.failures / self.attempts if self.attempts else 0.0

    @property
    def rate_display(self) -> str:
        """The rate for humans: ``n/a`` when nothing was attempted."""
        if self.attempts == 0:
            return "n/a"
        return "{:.2%}".format(self.rate)


def _sorted_rates(counts: Dict[str, List[int]]) -> List[FailureRate]:
    rows = [
        FailureRate(key=key, attempts=attempts, failures=failures)
        for key, (attempts, failures) in counts.items()
    ]
    # Worst first; zero-attempt groups (rate unknowable) after every
    # measured group; key as the deterministic tiebreak.
    rows.sort(key=lambda row: (row.attempts == 0, -row.rate, row.key))
    return rows


def provider_failure_rates(
    dataset: Dataset, providers: Optional[Sequence[str]] = None
) -> List[FailureRate]:
    """DoH failure rate per provider, worst first.

    *providers*, if given, fixes the group universe: a provider with
    zero samples (fully dark through an epoch, or filtered away) still
    gets a row — with ``attempts == 0`` and a ``n/a`` display — rather
    than silently vanishing from the report.
    """
    counts: Dict[str, List[int]] = {
        key: [0, 0] for key in (providers or ())
    }
    for sample in dataset.doh:
        entry = counts.setdefault(sample.provider, [0, 0])
        entry[0] += 1
        if not sample.success:
            entry[1] += 1
    return _sorted_rates(counts)


def country_failure_rates(
    dataset: Dataset, countries: Optional[Sequence[str]] = None
) -> List[FailureRate]:
    """Combined DoH + BrightData-Do53 failure rate per country.

    *countries* fixes the group universe like *providers* does for
    :func:`provider_failure_rates`.
    """
    counts: Dict[str, List[int]] = {
        key: [0, 0] for key in (countries or ())
    }
    for sample in dataset.doh:
        entry = counts.setdefault(sample.country, [0, 0])
        entry[0] += 1
        if not sample.success:
            entry[1] += 1
    for sample in dataset.do53:
        if sample.source != "brightdata":
            continue
        entry = counts.setdefault(sample.country, [0, 0])
        entry[0] += 1
        if not sample.success:
            entry[1] += 1
    return _sorted_rates(counts)


#: Substring → category for normalising raw error strings (they embed
#: variable parts like addresses and durations).
_REASON_MARKERS: Tuple[Tuple[str, str], ...] = (
    ("implausible", "implausible-estimate"),
    ("overloaded", "super-proxy-overloaded"),
    ("no exit nodes", "no-peer-available"),
    ("exit node died", "exit-node-died"),
    ("SERVFAIL", "servfail"),
    ("refused", "connection-refused"),
    ("timed out", "timeout"),
    ("timeout", "timeout"),
    ("no data within", "timeout"),
    ("closed", "connection-closed"),
    ("no A records", "no-answer"),
    ("dns failure", "central-dns-failure"),
)


def _categorise(error: str) -> str:
    for marker, category in _REASON_MARKERS:
        if marker in error:
            return category
    return "other"


def failure_reasons(dataset: Dataset) -> List[Tuple[str, int]]:
    """Failure categories with counts, most common first."""
    counts: Dict[str, int] = {}
    for sample in dataset.doh:
        if not sample.success:
            category = _categorise(sample.error)
            counts[category] = counts.get(category, 0) + 1
    for sample in dataset.do53:
        if sample.source == "brightdata" and not sample.success:
            category = _categorise(sample.error)
            counts[category] = counts.get(category, 0) + 1
    return sorted(counts.items(), key=lambda item: (-item[1], item[0]))


def render_failure_report(dataset: Dataset, max_countries: int = 15) -> str:
    """Plain-text failure report: providers, worst countries, reasons."""
    sections = []

    provider_rows = provider_failure_rates(dataset)
    sections.append("Failure rates by provider (DoH)")
    sections.append(format_table(
        ("provider", "attempts", "failures", "rate"),
        [
            (row.key, row.attempts, row.failures, row.rate_display)
            for row in provider_rows
        ],
    ))

    country_rows = country_failure_rates(dataset)[:max_countries]
    sections.append("")
    sections.append(
        "Failure rates by country (DoH + BrightData Do53, worst {})".format(
            len(country_rows)
        )
    )
    sections.append(format_table(
        ("country", "attempts", "failures", "rate"),
        [
            (row.key, row.attempts, row.failures, row.rate_display)
            for row in country_rows
        ],
    ))

    reasons = failure_reasons(dataset)
    sections.append("")
    sections.append("Failure reasons")
    sections.append(format_table(
        ("reason", "count"),
        reasons or [("(none)", 0)],
    ))
    return "\n".join(sections)

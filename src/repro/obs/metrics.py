"""Counters, gauges and histograms with a deterministic merge.

The registry is the campaign's flight recorder: cache hit rates,
retries, fault activations, simulator event counts, per-shard
wall-clock.  Semantics are chosen so that the sharded executor's merge
is **order-independent and deterministic**:

* **counters** — monotone totals; merging *sums* them.  Everything a
  determinism test compares lives here (and in histograms).
* **gauges** — point-in-time values; merging takes the *max*.  Wall
  clock and other nondeterministic readings belong here, under
  shard-unique names, and are excluded from determinism comparisons.
* **histograms** — fixed-bound bucket counts plus sum/count/min/max;
  merging adds buckets.  Shards are always folded in shard-index
  order, so float sums associate identically on every run.

A disabled registry (``enabled=False``) early-returns from every
mutator — the zero-cost-off contract.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Optional, Tuple, Union

__all__ = ["DEFAULT_BOUNDS", "Histogram", "MetricsRegistry"]

Number = Union[int, float]

#: Default latency bucket upper bounds (milliseconds); an implicit
#: +inf bucket catches the overflow.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0, 10000.0, 30000.0,
)


class Histogram:
    """Fixed-bound histogram with sum/count/min/max."""

    __slots__ = ("bounds", "counts", "sum", "count", "min", "max")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        self.bounds = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Add one observation."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold *other* into this histogram (bounds must match)."""
        if other.bounds != self.bounds:
            raise ValueError(
                "histogram bounds mismatch: {!r} vs {!r}".format(
                    self.bounds, other.bounds
                )
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.sum += other.sum
        self.count += other.count
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def to_json(self) -> Dict:
        """Plain-dict form (JSON-able, merge-able via from_json)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_json(cls, data: Dict) -> "Histogram":
        histogram = cls(tuple(data["bounds"]))
        histogram.counts = list(data["counts"])
        histogram.sum = data["sum"]
        histogram.count = data["count"]
        histogram.min = data["min"]
        histogram.max = data["max"]
        return histogram


class MetricsRegistry:
    """Named counters, gauges and histograms."""

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Number] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- mutators ---------------------------------------------------------

    def inc(self, name: str, amount: Number = 1) -> None:
        """Increment counter *name* by *amount*."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_counter(self, name: str, value: Number) -> None:
        """Set counter *name* to an absolute total (idempotent scrape)."""
        if not self.enabled:
            return
        self._counters[name] = value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* (merge takes the max across registries)."""
        if not self.enabled:
            return
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float,
                bounds: Tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        """Add one observation to histogram *name*."""
        if not self.enabled:
            return
        if not math.isfinite(value):
            raise ValueError(
                "non-finite observation for {!r}: {!r}".format(name, value)
            )
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(bounds)
        histogram.observe(value)

    # -- accessors --------------------------------------------------------

    def counter(self, name: str) -> Number:
        """Current counter value (0 when never touched)."""
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        """Current gauge value, or None when never set."""
        return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        """The named histogram, or None when never observed."""
        return self._histograms.get(name)

    def counters(self) -> Dict[str, Number]:
        """All counters, sorted by name."""
        return {name: self._counters[name] for name in sorted(self._counters)}

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- merge / serialisation --------------------------------------------

    def snapshot(self) -> Dict:
        """Plain-data form with sorted keys (picklable, JSON-able)."""
        return {
            "counters": self.counters(),
            "gauges": {
                name: self._gauges[name] for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].to_json()
                for name in sorted(self._histograms)
            },
        }

    def merge_snapshot(self, snapshot: Dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters sum, gauges take the max, histograms add buckets.
        Callers merging shards must fold them in shard-index order so
        histogram float sums stay bit-identical run to run.
        """
        for name, value in snapshot.get("counters", {}).items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            current = self._gauges.get(name)
            if current is None or value > current:
                self._gauges[name] = value
        for name, data in snapshot.get("histograms", {}).items():
            incoming = Histogram.from_json(data)
            existing = self._histograms.get(name)
            if existing is None:
                self._histograms[name] = incoming
            else:
                existing.merge(incoming)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (see merge_snapshot)."""
        self.merge_snapshot(other.snapshot())

    @classmethod
    def from_snapshot(cls, snapshot: Dict) -> "MetricsRegistry":
        registry = cls()
        registry.merge_snapshot(snapshot)
        return registry

    # -- reporting --------------------------------------------------------

    def describe(self, prefix: str = "") -> List[str]:
        """Human-readable lines for counters/gauges under *prefix*."""
        lines: List[str] = []
        for name in sorted(self._counters):
            if name.startswith(prefix):
                lines.append("{} = {}".format(name, self._counters[name]))
        for name in sorted(self._gauges):
            if name.startswith(prefix):
                lines.append("{} = {:.3f}".format(name, self._gauges[name]))
        for name in sorted(self._histograms):
            if name.startswith(prefix):
                histogram = self._histograms[name]
                lines.append(
                    "{}: n={} mean={:.2f} min={} max={}".format(
                        name, histogram.count, histogram.mean,
                        histogram.min, histogram.max,
                    )
                )
        return lines

"""Structured phase traces: the paper's Figure 2 timeline, per sample.

Every measurement decomposes into phases (the t1–t20 steps of the
paper's methodology): the exit node's DNS resolution and TCP handshake,
the BrightData box steps, the client-observed tunnel setup, TLS
handshake and query exchange.  The derived Equations 6–8 collapse all
of that into three numbers — when one of them looks wrong, the trace is
what tells you *which phase* produced it.

A :class:`TraceRecorder` captures one :class:`SampleTrace` per
measurement, addressable by ``(node_id, provider, run_index)`` (Do53
samples use the reserved provider key ``"do53"``).  Recording is
**observational only**: the recorder never draws randomness, never
yields to the simulator, and never mutates measurement state, so the
produced dataset is byte-identical with tracing on or off.

Events carry a ``source`` layer:

* ``"client"`` — client-side timestamps (absolute simulated ms),
* ``"exit"`` — exit-node timings reported in the tun-timeline header,
* ``"superproxy"`` — BrightData box steps from the timeline header
  (durations only; their absolute start is not observable, matching
  the real system).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ioutil import atomic_write_json

__all__ = [
    "DO53_PROVIDER_KEY",
    "PhaseEvent",
    "SampleTrace",
    "TraceKey",
    "TraceRecorder",
]

#: Provider key under which Do53 samples are addressed.
DO53_PROVIDER_KEY = "do53"

#: ``(node_id, provider, run_index)``.
TraceKey = Tuple[str, str, int]


@dataclass(frozen=True)
class PhaseEvent:
    """One phase of a measurement's timeline.

    ``start_ms`` is the absolute simulated time the phase began, or
    ``None`` for header-derived phases whose placement inside the
    tunnel-setup window is not observable (exit-node and BrightData
    steps — the real headers report durations only).
    """

    name: str
    source: str  # "client" | "exit" | "superproxy"
    start_ms: Optional[float]
    duration_ms: float

    def to_json(self) -> List:
        """Compact list form ``[name, source, start_ms, duration_ms]``."""
        return [self.name, self.source, self.start_ms, self.duration_ms]

    @classmethod
    def from_json(cls, data: List) -> "PhaseEvent":
        name, source, start_ms, duration_ms = data
        return cls(name, source, start_ms, duration_ms)


@dataclass(frozen=True)
class SampleTrace:
    """The phase timeline of one measurement."""

    node_id: str
    provider: str  # provider name, or DO53_PROVIDER_KEY
    run_index: int
    kind: str      # "doh" | "do53"
    success: bool
    error: str
    events: Tuple[PhaseEvent, ...]

    @property
    def key(self) -> TraceKey:
        return (self.node_id, self.provider, self.run_index)

    def event(self, name: str) -> Optional[PhaseEvent]:
        """The first event called *name*, or None."""
        for event in self.events:
            if event.name == name:
                return event
        return None

    def duration_from(self, source: str) -> float:
        """Total duration of all events recorded by *source*."""
        return sum(
            event.duration_ms for event in self.events
            if event.source == source
        )

    def to_json(self) -> Dict:
        """Plain-dict form for trace sidecar files."""
        return {
            "node_id": self.node_id,
            "provider": self.provider,
            "run_index": self.run_index,
            "kind": self.kind,
            "success": self.success,
            "error": self.error,
            "events": [event.to_json() for event in self.events],
        }

    @classmethod
    def from_json(cls, data: Dict) -> "SampleTrace":
        return cls(
            node_id=data["node_id"],
            provider=data["provider"],
            run_index=data["run_index"],
            kind=data["kind"],
            success=data["success"],
            error=data["error"],
            events=tuple(
                PhaseEvent.from_json(event) for event in data["events"]
            ),
        )


class TraceRecorder:
    """Collects :class:`SampleTrace` records during a campaign.

    A disabled recorder (``enabled=False``) turns every ``record_*``
    call into an early return — the zero-cost-off contract.  Raw
    records are *read*, never written; the recorder cannot perturb the
    simulation.
    """

    __slots__ = ("enabled", "_traces")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._traces: Dict[TraceKey, SampleTrace] = {}

    # -- capture ----------------------------------------------------------

    def record_doh(self, raw, t_handshake_ms: Optional[float] = None) -> None:
        """Capture a :class:`~repro.core.timeline.DohRaw`'s timeline.

        *t_handshake_ms* is the client's post-TLS-handshake timestamp
        (between T_C and T_D); None when the measurement failed before
        the handshake completed.
        """
        if not self.enabled:
            return
        events: List[PhaseEvent] = [
            PhaseEvent("tunnel_setup", "client", raw.t_a, raw.t_b - raw.t_a),
        ]
        if t_handshake_ms is not None:
            events.append(PhaseEvent(
                "tls_handshake", "client", raw.t_c,
                t_handshake_ms - raw.t_c,
            ))
            events.append(PhaseEvent(
                "query_exchange", "client", t_handshake_ms,
                raw.t_d - t_handshake_ms,
            ))
        events.extend(self._header_events(raw.headers, dns_source="exit"))
        self._store(SampleTrace(
            node_id=raw.node_id,
            provider=raw.provider,
            run_index=raw.run_index,
            kind="doh",
            success=raw.success,
            error=raw.error,
            events=tuple(events),
        ))

    def record_do53(self, raw) -> None:
        """Capture a :class:`~repro.core.timeline.Do53Raw`'s timeline."""
        if not self.enabled:
            return
        dns_source = "exit" if raw.resolved_at == "exit" else "superproxy"
        events = self._header_events(raw.headers, dns_source=dns_source)
        self._store(SampleTrace(
            node_id=raw.node_id,
            provider=DO53_PROVIDER_KEY,
            run_index=raw.run_index,
            kind="do53",
            success=raw.success,
            error=raw.error,
            events=tuple(events),
        ))

    @staticmethod
    def _header_events(headers, dns_source: str) -> List[PhaseEvent]:
        events = [
            PhaseEvent("exit_dns", dns_source, None, headers.dns_ms),
            PhaseEvent("exit_tcp_connect", "exit", None, headers.connect_ms),
        ]
        for key in sorted(headers.box):
            events.append(
                PhaseEvent("bd_" + key, "superproxy", None, headers.box[key])
            )
        return events

    def _store(self, trace: SampleTrace) -> None:
        # Successful keys are unique by construction; failed samples
        # may lack a node id, in which case the latest attempt wins.
        self._traces[trace.key] = trace

    # -- access ------------------------------------------------------------

    def get(self, node_id: str, provider: str, run_index: int
            ) -> Optional[SampleTrace]:
        """The trace for one measurement, or None."""
        return self._traces.get((node_id, provider, run_index))

    def keys(self) -> List[TraceKey]:
        """All trace keys in canonical sorted order."""
        return sorted(self._traces)

    def traces(self) -> List[SampleTrace]:
        """All traces in canonical key order."""
        return [self._traces[key] for key in self.keys()]

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self):
        return iter(self.traces())

    # -- merge / serialisation ---------------------------------------------

    def snapshot(self) -> List[Dict]:
        """Plain-data form (canonical order), picklable and JSON-able."""
        return [trace.to_json() for trace in self.traces()]

    def merge_snapshot(self, snapshot: Iterable[Dict]) -> None:
        """Fold a shard's :meth:`snapshot` into this recorder."""
        for data in snapshot:
            self._store(SampleTrace.from_json(data))

    @classmethod
    def from_snapshot(cls, snapshot: Iterable[Dict]) -> "TraceRecorder":
        recorder = cls()
        recorder.merge_snapshot(snapshot)
        return recorder

    def save(self, path: str) -> None:
        """Write all traces as JSON to *path* (atomic replace)."""
        atomic_write_json(path, {"traces": self.snapshot()})

    @classmethod
    def load(cls, path: str) -> "TraceRecorder":
        with open(path) as handle:
            return cls.from_snapshot(json.load(handle)["traces"])

"""Scraping a built world's internal counters into a metrics registry.

Every layer of the stack already counts things — DNS caches count hits
and misses, proxies count tunnels, the simulator kernel counts events,
the fault injector counts activations.  :func:`collect_world_metrics`
reads them all into absolute-valued counters (``set_counter``), so the
scrape is idempotent: calling it again after more simulation work
simply refreshes the totals.

All scraped values are pure functions of the world's deterministic
execution, so the merged counters are identical for any worker count
at a fixed shard layout (the determinism tests rely on this).
Wall-clock readings never come from here — those are gauges, set by
the callers that own a wall clock.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry

__all__ = ["collect_world_metrics"]


def collect_world_metrics(world, metrics: MetricsRegistry) -> None:
    """Scrape *world*'s counters into *metrics* (idempotent)."""
    if not metrics.enabled:
        return

    # -- simulator kernel --------------------------------------------------
    sim = world.sim
    metrics.set_counter("sim.events_scheduled", sim.events_scheduled)
    metrics.set_counter("sim.events_executed", sim.events_executed)

    # -- DNS caches: ISP resolvers, provider backends, super proxies ------
    isp_hits = isp_misses = 0
    for infra in world.population.infrastructure.values():
        for resolver in infra.all_resolvers():
            isp_hits += resolver.cache.hits
            isp_misses += resolver.cache.misses
    metrics.set_counter("dns.isp_cache_hits", isp_hits)
    metrics.set_counter("dns.isp_cache_misses", isp_misses)

    provider_hits = provider_misses = 0
    provider_queries = 0
    for provider in world.providers.values():
        provider_queries += provider.total_queries()
        for pop in provider.pops:
            provider_hits += pop.resolver.cache.hits
            provider_misses += pop.resolver.cache.misses
    metrics.set_counter("doh.provider_cache_hits", provider_hits)
    metrics.set_counter("doh.provider_cache_misses", provider_misses)
    metrics.set_counter("doh.provider_queries", provider_queries)

    sp_hits = sp_misses = 0
    tunnels = fetches = 0
    for super_proxy in world.super_proxies:
        tunnels += super_proxy.tunnels_served
        fetches += super_proxy.fetches_served
        if super_proxy.resolver is not None:
            sp_hits += super_proxy.resolver.cache.hits
            sp_misses += super_proxy.resolver.cache.misses
    metrics.set_counter("proxy.superproxy_cache_hits", sp_hits)
    metrics.set_counter("proxy.superproxy_cache_misses", sp_misses)
    metrics.set_counter("proxy.tunnels_served", tunnels)
    metrics.set_counter("proxy.fetches_served", fetches)

    # -- exit-node fleet ---------------------------------------------------
    node_tunnels = node_fetches = 0
    for node in world.nodes():
        node_tunnels += node.tunnels_served
        node_fetches += node.fetches_served
    metrics.set_counter("exit.tunnels_served", node_tunnels)
    metrics.set_counter("exit.fetches_served", node_fetches)

    # -- fault activations -------------------------------------------------
    injector = world.fault_injector
    if injector is not None:
        for kind in sorted(injector.activations):
            metrics.set_counter(
                "faults." + kind, injector.activations[kind]
            )
        chain = world.network.burst_loss
        if chain is not None:
            metrics.set_counter("faults.burst_losses", chain.losses)

"""Run manifests: every dataset ships with its own provenance.

A manifest answers "what produced these bytes?" without re-running
anything: the config hash and seed, the fault plan, the shard layout,
the package version, aggregate metrics and per-phase timings.  It is
written *next to* the dataset (``dataset.manifest.json`` beside
``dataset.json``) so the dataset files themselves stay byte-identical
to the non-observed run.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Dict, Optional

from repro.ioutil import atomic_write_json

__all__ = [
    "build_manifest",
    "config_hash",
    "sidecar_path",
    "write_manifest",
]


def config_hash(config) -> str:
    """Stable hex digest of a :class:`~repro.core.config.ReproConfig`.

    Dataclass ``repr`` is deterministic and covers every field
    (population, latency params, fault plan included), so two configs
    hash equal exactly when they define the same experiment.
    """
    digest = hashlib.blake2b(
        repr(config).encode("utf-8"), digest_size=16
    )
    return digest.hexdigest()


def sidecar_path(dataset_path: str, kind: str) -> str:
    """Path of a *kind* sidecar next to *dataset_path*.

    ``sidecar_path("out/ds.json", "manifest") == "out/ds.manifest.json"``
    """
    base, _ext = os.path.splitext(dataset_path)
    return "{}.{}.json".format(base, kind)


def build_manifest(
    config,
    dataset=None,
    dataset_path: Optional[str] = None,
    workers: Optional[int] = None,
    num_shards: Optional[int] = None,
    metrics: Optional[Dict] = None,
    phases: Optional[Dict] = None,
    command: str = "",
    checkpoint: Optional[Dict] = None,
    availability: Optional[Dict] = None,
    service: Optional[Dict] = None,
) -> Dict:
    """Assemble the manifest dict for one finished campaign.

    *metrics* is a :meth:`MetricsRegistry.snapshot`; *phases* is the
    per-provider phase aggregate from
    :func:`repro.analysis.phases.phase_summary`.  Both are None when
    observability was off — the manifest still records provenance.

    *checkpoint*, for checkpointed runs, records resume provenance: the
    checkpoint directory and fingerprint, the per-run resume counters
    (batches replayed from the ledger vs measured live), and the
    extension lineage (see :mod:`repro.ckpt`).  None for plain runs.

    *availability* and *service*, for longitudinal service runs
    (:mod:`repro.service`), carry the compact SLO summary and the
    service identity/progress block.  None for one-shot campaigns.
    """
    from repro import __version__  # local import: repro imports core

    manifest: Dict = {
        "repro_version": __version__,
        "created_at_unix": round(time.time(), 3),
        "command": command,
        "seed": config.seed,
        "config_hash": config_hash(config),
        "scale": config.population.scale,
        "providers": list(config.providers),
        "runs_per_client": config.runs_per_client,
        "tls_version": config.tls_version,
        "measurement_domain": config.measurement_domain,
        "batch_size": config.batch_size,
        "geolocation_error_rate": config.geolocation_error_rate,
        "fault_plan": repr(config.faults) if config.faults else None,
        "shard_layout": {
            "num_shards": num_shards,
            "workers": workers,
        },
        "metrics": metrics,
        "phases": phases,
        "checkpoint": checkpoint,
        "availability": availability,
        "service": service,
    }
    if dataset is not None:
        manifest["dataset"] = {
            "path": dataset_path,
            "clients": len(dataset.clients),
            "doh_samples": len(dataset.doh),
            "do53_samples": len(dataset.do53),
            "countries": len(dataset.countries()),
        }
    return manifest


def write_manifest(path: str, manifest: Dict) -> str:
    """Write *manifest* as sorted, indented JSON; returns *path*.

    The write is atomic (tmp + rename) so a kill mid-save never leaves
    a truncated sidecar next to a good dataset.
    """
    return atomic_write_json(
        path, manifest, indent=2, sort_keys=True, trailing_newline=True
    )

"""Observability layer (``repro.obs``): traces, metrics, manifests.

The paper's methodology is a *decomposition* of latency into phases
(Figure 2, Equations 1–8); this subsystem makes the decomposition
visible at runtime:

* :mod:`repro.obs.trace` — per-measurement phase timelines, keyed by
  ``(node_id, provider, run_index)``;
* :mod:`repro.obs.metrics` — counters/gauges/histograms with a
  deterministic shard merge;
* :mod:`repro.obs.manifest` — self-describing run manifests written
  next to every dataset;
* :mod:`repro.obs.collect` — scraping the world's internal counters.

The cardinal invariant: observability **observes, never perturbs**.
No recorder or registry ever draws from a simulation RNG stream or
yields to the kernel, so the exported dataset is byte-identical with
observability on or off (``tests/obs/test_determinism.py`` enforces
this).  With observability off (the default), every hook is a single
``None`` check or an early return.
"""

from repro.obs.collect import collect_world_metrics
from repro.obs.manifest import (
    build_manifest,
    config_hash,
    sidecar_path,
    write_manifest,
)
from repro.obs.metrics import DEFAULT_BOUNDS, Histogram, MetricsRegistry
from repro.obs.trace import (
    DO53_PROVIDER_KEY,
    PhaseEvent,
    SampleTrace,
    TraceRecorder,
)

__all__ = [
    "DEFAULT_BOUNDS",
    "DO53_PROVIDER_KEY",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "PhaseEvent",
    "SampleTrace",
    "TraceRecorder",
    "build_manifest",
    "collect_world_metrics",
    "config_hash",
    "sidecar_path",
    "write_manifest",
]


class Observability:
    """One switch bundling a trace recorder and a metrics registry.

    Pass an instance to :class:`~repro.core.campaign.Campaign` (or
    ``observe=True`` to ``run_parallel_campaign``) to enable capture;
    pass nothing and every instrumentation point stays a no-op.
    """

    __slots__ = ("trace", "metrics")

    def __init__(self, traces: bool = True, metrics: bool = True) -> None:
        self.trace = TraceRecorder(enabled=traces)
        self.metrics = MetricsRegistry(enabled=metrics)

"""Builds a processed :class:`Dataset` from raw campaign records.

Responsibilities:

* apply Equations 6–8 to every raw DoH record,
* join each DoH query against the authoritative server's query log to
  discover which recursive resolver (PoP) served it — the paper's
  mechanism for enumerating provider PoPs,
* apply the Do53 validity rule and merge RIPE Atlas supplements,
* register clients once, post Maxmind validation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.core.do53_timing import do53_valid
from repro.core.doh_timing import (
    compute_rtt_estimate,
    compute_t_doh,
    compute_t_dohr,
)
from repro.core.timeline import Do53Raw, DohRaw
from repro.dataset.records import ClientRecord, Do53Sample, DohSample
from repro.dataset.store import Dataset
from repro.geo.geolocate import GeolocationService
from repro.geo.ipalloc import prefix_of

__all__ = ["DatasetBuilder"]


class DatasetBuilder:
    """Accumulates raw measurements into a processed dataset."""

    def __init__(
        self,
        geolocation: GeolocationService,
        min_clients_per_country: int = 10,
    ) -> None:
        self.geolocation = geolocation
        self.dataset = Dataset(min_clients_per_country=min_clients_per_country)
        self._seen_clients: Dict[str, ClientRecord] = {}
        #: qname -> (resolver ip) from the authoritative query log.
        self._qname_resolver: Dict[str, str] = {}

    # -- auth-log join ------------------------------------------------------

    def ingest_auth_log(self, entries: Iterable) -> None:
        """Record which resolver asked for each unique qname."""
        for entry in entries:
            qname = str(entry.qname)
            # First query wins; retries come from the same resolver.
            self._qname_resolver.setdefault(qname, entry.src_ip)

    def ingest_qname_map(
        self, pairs: Iterable[Tuple[str, str]]
    ) -> None:
        """Merge pre-reduced ``(qname, resolver_ip)`` pairs.

        The sharded executor reduces each worker's authoritative query
        log to this form before shipping it across the process
        boundary; first occurrence wins, matching
        :meth:`ingest_auth_log`.
        """
        for qname, src_ip in pairs:
            self._qname_resolver.setdefault(qname, src_ip)

    def _locate_pop(self, qname: str) -> Tuple[str, Optional[float], Optional[float]]:
        resolver_ip = self._qname_resolver.get(qname.lower().rstrip("."))
        if not resolver_ip:
            return "", None, None
        record = self.geolocation.lookup(resolver_ip)
        if record is None:
            return prefix_of(resolver_ip), None, None
        return (
            prefix_of(resolver_ip),
            record.location.lat,
            record.location.lon,
        )

    # -- clients ----------------------------------------------------------

    def add_client(self, node_id: str, address: str, country: str) -> None:
        """Register a validated client once (idempotent per node id)."""
        if node_id in self._seen_clients:
            return
        located = self.geolocation.lookup(address)
        lat = located.location.lat if located else 0.0
        lon = located.location.lon if located else 0.0
        record = ClientRecord.from_parts(node_id, address, country, lat, lon)
        self._seen_clients[node_id] = record
        self.dataset.clients.append(record)

    # -- measurements ---------------------------------------------------------

    #: Estimates outside this window are loss-corrupted: a retransmission
    #: during tunnel setup violates Assumption 1 (stable RTT) and can
    #: drive Equations 7-8 negative.  Real campaigns discard such points.
    MIN_PLAUSIBLE_MS = 1.0
    MAX_PLAUSIBLE_MS = 60000.0

    def _plausible(self, raw: DohRaw) -> bool:
        t_doh = compute_t_doh(raw)
        t_dohr = compute_t_dohr(raw)
        return (
            self.MIN_PLAUSIBLE_MS <= t_dohr <= self.MAX_PLAUSIBLE_MS
            and self.MIN_PLAUSIBLE_MS <= t_doh <= self.MAX_PLAUSIBLE_MS
        )

    def add_doh(self, raw: DohRaw) -> None:
        """Apply Equations 6-8 to *raw* and store the sample."""
        if raw.success and not self._plausible(raw):
            raw = DohRaw(
                node_id=raw.node_id,
                exit_ip=raw.exit_ip,
                claimed_country=raw.claimed_country,
                provider=raw.provider,
                qname=raw.qname,
                t_a=raw.t_a,
                t_b=raw.t_b,
                t_c=raw.t_c,
                t_d=raw.t_d,
                headers=raw.headers,
                tls_version=raw.tls_version,
                run_index=raw.run_index,
                success=False,
                error="implausible estimate (loss-corrupted measurement)",
            )
        if raw.success:
            pop_prefix, pop_lat, pop_lon = self._locate_pop(raw.qname)
            sample = DohSample(
                node_id=raw.node_id,
                country=raw.claimed_country,
                provider=raw.provider,
                run_index=raw.run_index,
                t_doh_ms=compute_t_doh(raw),
                t_dohr_ms=compute_t_dohr(raw),
                rtt_estimate_ms=compute_rtt_estimate(raw),
                pop_ip_prefix=pop_prefix,
                pop_lat=pop_lat,
                pop_lon=pop_lon,
            )
        else:
            sample = DohSample(
                node_id=raw.node_id,
                country=raw.claimed_country,
                provider=raw.provider,
                run_index=raw.run_index,
                # A failure has no latency: None (never 0.0) so a zero
                # can never dilute latency percentiles unnoticed.
                t_doh_ms=None,
                t_dohr_ms=None,
                rtt_estimate_ms=None,
                success=False,
                error=raw.error,
            )
        self.dataset.doh.append(sample)

    def add_do53(self, raw: Do53Raw) -> None:
        """Apply the Do53 validity rule to *raw* and store it."""
        self.dataset.do53.append(
            Do53Sample(
                node_id=raw.node_id,
                country=raw.claimed_country,
                run_index=raw.run_index,
                time_ms=raw.dns_ms if raw.success else None,
                source="brightdata",
                valid=do53_valid(raw),
                success=raw.success,
                error=raw.error,
            )
        )

    def add_atlas_do53(
        self, probe_id: str, country: str, run_index: int, time_ms: float
    ) -> None:
        """Store one RIPE Atlas Do53 sample."""
        self.dataset.do53.append(
            Do53Sample(
                node_id=probe_id,
                country=country,
                run_index=run_index,
                time_ms=time_ms,
                source="ripeatlas",
            )
        )

    def build(self) -> Dataset:
        """The accumulated dataset."""
        return self.dataset

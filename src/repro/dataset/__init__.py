"""Dataset model: processed measurements ready for analysis.

The paper releases its dataset; this package defines the records, the
container with query helpers, and JSON serialisation so campaign
outputs can be saved and re-analysed without re-simulation.
"""

from repro.dataset.records import ClientRecord, Do53Sample, DohSample
from repro.dataset.store import Dataset
from repro.dataset.builder import DatasetBuilder

__all__ = [
    "ClientRecord",
    "Dataset",
    "DatasetBuilder",
    "Do53Sample",
    "DohSample",
]

"""CSV import/export for the dataset (the paper's release format).

The paper publishes its dataset; flat CSVs are the lingua franca for
reuse.  Three files are written: ``clients.csv``, ``doh.csv`` and
``do53.csv``.  :func:`load_csv` reads them back into a
:class:`~repro.dataset.store.Dataset`.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List, Optional

from repro.dataset.records import ClientRecord, Do53Sample, DohSample
from repro.dataset.store import Dataset

__all__ = ["export_csv", "load_csv"]

_CLIENT_FIELDS = ("node_id", "ip_prefix", "country", "lat", "lon")
_DOH_FIELDS = (
    "node_id", "country", "provider", "run_index", "t_doh_ms",
    "t_dohr_ms", "rtt_estimate_ms", "pop_ip_prefix", "pop_lat",
    "pop_lon", "success", "error",
)
_DO53_FIELDS = (
    "node_id", "country", "run_index", "time_ms", "source", "valid",
    "success", "error",
)


def _write(path: str, fields, rows) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(fields))
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def export_csv(dataset: Dataset, directory: str) -> Dict[str, str]:
    """Write the dataset as three CSVs into *directory*.

    Returns ``{kind: path}`` for the files written.
    """
    os.makedirs(directory, exist_ok=True)
    paths = {
        "clients": os.path.join(directory, "clients.csv"),
        "doh": os.path.join(directory, "doh.csv"),
        "do53": os.path.join(directory, "do53.csv"),
    }
    _write(paths["clients"], _CLIENT_FIELDS,
           (client.to_json() for client in dataset.clients))
    _write(paths["doh"], _DOH_FIELDS,
           (sample.to_json() for sample in dataset.doh))
    _write(paths["do53"], _DO53_FIELDS,
           (sample.to_json() for sample in dataset.do53))
    return paths


def _parse_optional_float(text: str) -> Optional[float]:
    return float(text) if text not in ("", "None") else None


def _parse_bool(text: str) -> bool:
    return text in ("True", "true", "1")


def load_csv(directory: str,
             min_clients_per_country: int = 10) -> Dataset:
    """Read a dataset previously written by :func:`export_csv`."""
    clients: List[ClientRecord] = []
    with open(os.path.join(directory, "clients.csv"), newline="") as handle:
        for row in csv.DictReader(handle):
            clients.append(ClientRecord(
                node_id=row["node_id"],
                ip_prefix=row["ip_prefix"],
                country=row["country"],
                lat=float(row["lat"]),
                lon=float(row["lon"]),
            ))
    doh: List[DohSample] = []
    with open(os.path.join(directory, "doh.csv"), newline="") as handle:
        for row in csv.DictReader(handle):
            doh.append(DohSample(
                node_id=row["node_id"],
                country=row["country"],
                provider=row["provider"],
                run_index=int(row["run_index"]),
                t_doh_ms=_parse_optional_float(row["t_doh_ms"]),
                t_dohr_ms=_parse_optional_float(row["t_dohr_ms"]),
                rtt_estimate_ms=_parse_optional_float(row["rtt_estimate_ms"]),
                pop_ip_prefix=row["pop_ip_prefix"],
                pop_lat=_parse_optional_float(row["pop_lat"]),
                pop_lon=_parse_optional_float(row["pop_lon"]),
                success=_parse_bool(row["success"]),
                error=row["error"],
            ))
    do53: List[Do53Sample] = []
    with open(os.path.join(directory, "do53.csv"), newline="") as handle:
        for row in csv.DictReader(handle):
            do53.append(Do53Sample(
                node_id=row["node_id"],
                country=row["country"],
                run_index=int(row["run_index"]),
                time_ms=_parse_optional_float(row["time_ms"]),
                source=row["source"],
                valid=_parse_bool(row["valid"]),
                success=_parse_bool(row["success"]),
                error=row["error"],
            ))
    return Dataset(
        clients=clients, doh=doh, do53=do53,
        min_clients_per_country=min_clients_per_country,
    )

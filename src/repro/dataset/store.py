"""The dataset container with query helpers and serialisation."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.dataset.records import ClientRecord, Do53Sample, DohSample
from repro.ioutil import atomic_write_json

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """Clients plus their DoH and Do53 samples."""

    clients: List[ClientRecord] = field(default_factory=list)
    doh: List[DohSample] = field(default_factory=list)
    do53: List[Do53Sample] = field(default_factory=list)
    #: Countries analysed per-country need at least this many clients
    #: per provider (paper: 10; scaled runs shrink it proportionally).
    min_clients_per_country: int = 10

    # -- indices ---------------------------------------------------------

    def client_by_id(self) -> Dict[str, ClientRecord]:
        """Index clients by node id."""
        return {client.node_id: client for client in self.clients}

    def countries(self) -> List[str]:
        """All countries with at least one client."""
        return sorted({client.country for client in self.clients})

    def providers(self) -> List[str]:
        """All providers with at least one DoH sample."""
        return sorted({sample.provider for sample in self.doh})

    # -- filtered views -----------------------------------------------------

    def successful_doh(self, provider: Optional[str] = None) -> List[DohSample]:
        """Successful DoH samples, optionally for one provider."""
        return [
            sample
            for sample in self.doh
            if sample.success and (provider is None or sample.provider == provider)
        ]

    def valid_do53(self, source: Optional[str] = None) -> List[Do53Sample]:
        """Valid Do53 samples, optionally from one platform."""
        return [
            sample
            for sample in self.do53
            if sample.success
            and sample.valid
            and (source is None or sample.source == source)
        ]

    def doh_by_country(self, provider: Optional[str] = None
                       ) -> Dict[str, List[DohSample]]:
        """Successful DoH samples grouped by country."""
        grouped: Dict[str, List[DohSample]] = {}
        for sample in self.successful_doh(provider):
            grouped.setdefault(sample.country, []).append(sample)
        return grouped

    def do53_by_country(self) -> Dict[str, List[Do53Sample]]:
        """Valid Do53 samples grouped by country."""
        grouped: Dict[str, List[Do53Sample]] = {}
        for sample in self.valid_do53():
            grouped.setdefault(sample.country, []).append(sample)
        return grouped

    def clients_per_country(self) -> Dict[str, int]:
        """Unique clients per country."""
        counts: Dict[str, int] = {}
        for client in self.clients:
            counts[client.country] = counts.get(client.country, 0) + 1
        return counts

    def analyzed_countries(self) -> List[str]:
        """Countries meeting the paper's per-provider client minimum."""
        eligible: Optional[Set[str]] = None
        for provider in self.providers():
            per_country: Dict[str, Set[str]] = {}
            for sample in self.successful_doh(provider):
                per_country.setdefault(sample.country, set()).add(
                    sample.node_id
                )
            good = {
                country
                for country, ids in per_country.items()
                if len(ids) >= self.min_clients_per_country
            }
            eligible = good if eligible is None else (eligible & good)
        return sorted(eligible or set())

    def excluded_countries(self) -> List[str]:
        """Countries below the per-provider client minimum."""
        analyzed = set(self.analyzed_countries())
        return sorted(set(self.countries()) - analyzed)

    # -- composition stats (Table 3) ------------------------------------------

    def unique_clients(self, provider: Optional[str] = None) -> int:
        """Unique clients, optionally those a provider measured (Table 3)."""
        if provider is None:
            return len({client.node_id for client in self.clients})
        return len(
            {sample.node_id for sample in self.successful_doh(provider)}
        )

    def unique_countries(self, provider: Optional[str] = None) -> int:
        """Unique countries, optionally per provider (Table 3)."""
        if provider is None:
            return len(self.countries())
        return len(
            {sample.country for sample in self.successful_doh(provider)}
        )

    # -- incremental merge -------------------------------------------------

    def merge(self, delta: "Dataset") -> "Dataset":
        """A new dataset holding this one plus *delta*'s samples.

        The merge rule for incremental campaigns (``repro ckpt
        extend``): base records keep their exact order and bytes, delta
        records are appended after them, and clients already registered
        in the base keep their base row (a node re-measured by a delta
        is the same client).  Merging the same delta onto the same base
        therefore always produces the same bytes, and merging an empty
        delta reproduces the base exactly.
        """
        known = {client.node_id for client in self.clients}
        return Dataset(
            clients=list(self.clients)
            + [c for c in delta.clients if c.node_id not in known],
            doh=list(self.doh) + list(delta.doh),
            do53=list(self.do53) + list(delta.do53),
            min_clients_per_country=self.min_clients_per_country,
        )

    # -- serialisation -----------------------------------------------------------

    def to_json(self) -> Dict:
        """Plain-dict form of the whole dataset."""
        return {
            "min_clients_per_country": self.min_clients_per_country,
            "clients": [client.to_json() for client in self.clients],
            "doh": [sample.to_json() for sample in self.doh],
            "do53": [sample.to_json() for sample in self.do53],
        }

    @classmethod
    def from_json(cls, data: Dict) -> "Dataset":
        return cls(
            clients=[ClientRecord.from_json(c) for c in data["clients"]],
            doh=[DohSample.from_json(s) for s in data["doh"]],
            do53=[Do53Sample.from_json(s) for s in data["do53"]],
            min_clients_per_country=data.get("min_clients_per_country", 10),
        )

    def save(self, path: str) -> None:
        """Write the dataset as JSON to *path* (atomically: a kill
        mid-save never leaves a truncated dataset behind)."""
        atomic_write_json(path, self.to_json())

    @classmethod
    def load(cls, path: str) -> "Dataset":
        with open(path) as handle:
            return cls.from_json(json.load(handle))

    def summary(self) -> str:
        """Human-readable one-paragraph description."""
        return (
            "Dataset: {} clients, {} countries, {} DoH samples "
            "({} successful), {} Do53 samples ({} valid), "
            "{} analysed countries".format(
                len(self.clients),
                len(self.countries()),
                len(self.doh),
                len(self.successful_doh()),
                len(self.do53),
                len(self.valid_do53()),
                len(self.analyzed_countries()),
            )
        )

"""Processed dataset records.

Privacy follows the paper's appendix: client addresses are stored only
as /24 prefixes, and geolocation is /24-based.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

from repro.geo.ipalloc import prefix_of

__all__ = ["ClientRecord", "Do53Sample", "DohSample"]


@dataclass(frozen=True)
class ClientRecord:
    """One unique measurement client (exit node) in the dataset."""

    node_id: str
    ip_prefix: str  # /24 only, per the paper's ethics appendix
    country: str    # validated (BrightData label == Maxmind lookup)
    lat: float
    lon: float

    @classmethod
    def from_parts(
        cls, node_id: str, address: str, country: str, lat: float, lon: float
    ) -> "ClientRecord":
        return cls(
            node_id=node_id,
            ip_prefix=prefix_of(address),
            country=country,
            lat=round(lat, 3),
            lon=round(lon, 3),
        )

    def to_json(self) -> Dict[str, Any]:
        """Plain-dict form for JSON/CSV serialisation."""
        return asdict(self)

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ClientRecord":
        return cls(**data)


@dataclass(frozen=True)
class DohSample:
    """One DoH measurement after Equations 7/8 were applied."""

    node_id: str
    country: str
    provider: str
    run_index: int
    #: Equations 7/8/6; None for failed measurements — a failure has no
    #: latency, and None (unlike 0.0) explodes loudly if an aggregation
    #: forgets to filter on ``success``.
    t_doh_ms: Optional[float]       # Equation 7 (first query, with handshake)
    t_dohr_ms: Optional[float]      # Equation 8 (connection reuse)
    rtt_estimate_ms: Optional[float]  # Equation 6 (client↔exit via proxy)
    #: /24 of the recursive resolver that hit our authoritative server
    #: for this query (how the paper discovers PoPs), "" if unobserved.
    pop_ip_prefix: str = ""
    pop_lat: Optional[float] = None
    pop_lon: Optional[float] = None
    success: bool = True
    error: str = ""

    def to_json(self) -> Dict[str, Any]:
        """Plain-dict form for JSON/CSV serialisation."""
        return asdict(self)

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "DohSample":
        return cls(**data)


@dataclass(frozen=True)
class Do53Sample:
    """One Do53 measurement (BrightData fetch or RIPE Atlas probe)."""

    node_id: str
    country: str
    run_index: int
    #: None for failed measurements (see DohSample timing fields).
    time_ms: Optional[float]
    source: str = "brightdata"  # or "ripeatlas"
    valid: bool = True
    success: bool = True
    error: str = ""

    def to_json(self) -> Dict[str, Any]:
        """Plain-dict form for JSON/CSV serialisation."""
        return asdict(self)

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Do53Sample":
        return cls(**data)

"""HTTP/1.1 substrate: messages, client, server.

DoH (RFC 8484) runs over HTTPS, and the BrightData Super Proxy speaks
HTTP CONNECT with custom timing headers — both are built on this
package.  Messages serialise to real HTTP/1.1 bytes (start line,
headers, body), which is what the latency model charges for.
"""

from repro.http.message import (
    HeaderBag,
    HttpError,
    HttpRequest,
    HttpResponse,
    Status,
)
from repro.http.client import HttpClient, request_over
from repro.http.server import HttpServer

__all__ = [
    "HeaderBag",
    "HttpClient",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "Status",
    "request_over",
]

"""HTTP/HTTPS server on a simulated host.

The paper's web server (the "a.com" target that the exit nodes fetch
for Do53 measurements) and the DoH providers' HTTPS front ends are
instances of this class.  A handler is a function
``handler(request, conn_info)`` returning a generator that yields
simulation events and returns an :class:`HttpResponse`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.http.message import HttpRequest, HttpResponse, Status
from repro.netsim.host import Host
from repro.netsim.sockets import ConnectionClosed, TcpConnection
from repro.tls.handshake import server_handshake
from repro.tls.session import TlsConnection

__all__ = ["ConnInfo", "HttpServer"]


@dataclass(frozen=True)
class ConnInfo:
    """Facts about the connection a request arrived on."""

    peer_ip: str
    tls_version: Optional[str]  # None for plain HTTP
    server_host: Host


class HttpServer:
    """Serves HTTP or HTTPS with persistent connections."""

    def __init__(
        self,
        host: Host,
        port: int,
        handler: Callable[[HttpRequest, ConnInfo], object],
        use_tls: bool = False,
        processing_ms: float = 0.8,
        tls_crypto_ms: float = 1.2,
        refuse: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.handler = handler
        self.use_tls = use_tls
        self.processing_ms = processing_ms
        self.tls_crypto_ms = tls_crypto_ms
        #: Optional fault hook: when it returns True the server drops an
        #: incoming connection before the (TLS) handshake — what a dead
        #: or overloaded front end looks like from outside.
        self.refuse = refuse
        self.requests_served = 0
        self.connections_refused = 0
        self._listener = None

    def start(self) -> None:
        """Bind the listener and begin accepting connections."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        self._listener = self.host.listen_tcp(self.port, self._on_connection)

    def stop(self) -> None:
        """Close the listener."""
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    # -- per-connection service -------------------------------------------

    def _on_connection(self, conn: TcpConnection):
        if self.refuse is not None and self.refuse():
            self.connections_refused += 1
            conn.close()
            return
        stream = conn
        tls_version: Optional[str] = None
        if self.use_tls:
            try:
                result = yield from server_handshake(
                    conn, crypto_ms=self.tls_crypto_ms
                )
            except Exception:
                conn.close()
                return
            stream = TlsConnection(conn, result, is_client=False)
            tls_version = result.version
        info = ConnInfo(
            peer_ip=conn.remote_ip,
            tls_version=tls_version,
            server_host=self.host,
        )
        while True:
            try:
                message = yield stream.recv()
            except ConnectionClosed:
                return
            if not isinstance(message, HttpRequest):
                response = HttpResponse(status=Status.BAD_REQUEST)
                stream.send(response, response.wire_size())
                continue
            if self.processing_ms > 0:
                yield self.host.busy(self.processing_ms)
            try:
                response = yield from self.handler(message, info)
            except Exception:
                response = HttpResponse(status=Status.BAD_GATEWAY)
            if not isinstance(response, HttpResponse):
                response = HttpResponse(status=Status.BAD_GATEWAY)
            self.requests_served += 1
            try:
                stream.send(response, response.wire_size())
            except ConnectionClosed:
                return

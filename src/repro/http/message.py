"""HTTP/1.1 message model with real serialisation and parsing.

Requests and responses round-trip through actual HTTP/1.1 bytes so the
simulated wire carries authentic sizes, and so header-dependent logic
(the BrightData ``X-luminati-*`` timing headers, DoH content types) is
exercised against a real parser rather than dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["HeaderBag", "HttpError", "HttpRequest", "HttpResponse", "Status"]

_CRLF = "\r\n"


class HttpError(ValueError):
    """Malformed HTTP data."""


class Status:
    """Status codes the reproduction uses."""

    OK = 200
    BAD_REQUEST = 400
    FORBIDDEN = 403
    NOT_FOUND = 404
    REQUEST_TIMEOUT = 408
    BAD_GATEWAY = 502
    GATEWAY_TIMEOUT = 504

    REASONS = {
        200: "OK",
        400: "Bad Request",
        403: "Forbidden",
        404: "Not Found",
        408: "Request Timeout",
        502: "Bad Gateway",
        504: "Gateway Timeout",
    }

    @classmethod
    def reason(cls, code: int) -> str:
        return cls.REASONS.get(code, "Unknown")


class HeaderBag:
    """Case-insensitive, order-preserving header collection."""

    def __init__(self, items: Optional[List[Tuple[str, str]]] = None) -> None:
        self._items: List[Tuple[str, str]] = []
        if items:
            for name, value in items:
                self.add(name, value)

    def add(self, name: str, value: str) -> None:
        """Append a header (CRLF injection rejected)."""
        if "\r" in name or "\n" in name or "\r" in value or "\n" in value:
            raise HttpError("CRLF in header")
        self._items.append((name, str(value)))

    def set(self, name: str, value: str) -> None:
        """Replace all values of *name* with one."""
        self.remove(name)
        self.add(name, value)

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """First value of *name*, or *default*."""
        lowered = name.lower()
        for key, value in self._items:
            if key.lower() == lowered:
                return value
        return default

    def get_all(self, name: str) -> List[str]:
        """Every value of *name*, in order."""
        lowered = name.lower()
        return [value for key, value in self._items if key.lower() == lowered]

    def remove(self, name: str) -> None:
        """Drop all values of *name*."""
        lowered = name.lower()
        self._items = [
            (key, value) for key, value in self._items if key.lower() != lowered
        ]

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def copy(self) -> "HeaderBag":
        """An independent copy of the bag."""
        return HeaderBag(list(self._items))

    def serialize(self) -> str:
        """The header block as CRLF-terminated lines."""
        return "".join(
            "{}: {}{}".format(name, value, _CRLF) for name, value in self._items
        )

    @classmethod
    def parse(cls, lines: List[str]) -> "HeaderBag":
        bag = cls()
        for line in lines:
            if ":" not in line:
                raise HttpError("malformed header line: {!r}".format(line))
            name, _, value = line.partition(":")
            bag.add(name.strip(), value.strip())
        return bag


@dataclass
class HttpRequest:
    """An HTTP/1.1 request."""

    method: str
    target: str
    headers: HeaderBag = field(default_factory=HeaderBag)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def __post_init__(self) -> None:
        if self.body and "content-length" not in self.headers:
            self.headers.set("Content-Length", str(len(self.body)))

    @property
    def host(self) -> Optional[str]:
        return self.headers.get("Host")

    def to_bytes(self) -> bytes:
        """Serialise to HTTP/1.1 wire bytes."""
        start = "{} {} {}{}".format(self.method, self.target, self.version, _CRLF)
        return (start + self.headers.serialize() + _CRLF).encode() + self.body

    def wire_size(self) -> int:
        """Serialised size in bytes (what the fabric charges)."""
        return len(self.to_bytes())

    @classmethod
    def from_bytes(cls, raw: bytes) -> "HttpRequest":
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode(errors="replace").split(_CRLF)
        if not lines or not lines[0]:
            raise HttpError("empty request")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise HttpError("malformed request line: {!r}".format(lines[0]))
        method, target, version = parts
        headers = HeaderBag.parse([line for line in lines[1:] if line])
        return cls(
            method=method,
            target=target,
            headers=headers,
            body=body,
            version=version,
        )


@dataclass
class HttpResponse:
    """An HTTP/1.1 response."""

    status: int
    headers: HeaderBag = field(default_factory=HeaderBag)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def __post_init__(self) -> None:
        if self.body and "content-length" not in self.headers:
            self.headers.set("Content-Length", str(len(self.body)))

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def to_bytes(self) -> bytes:
        """Serialise to HTTP/1.1 wire bytes."""
        start = "{} {} {}{}".format(
            self.version, self.status, Status.reason(self.status), _CRLF
        )
        return (start + self.headers.serialize() + _CRLF).encode() + self.body

    def wire_size(self) -> int:
        """Serialised size in bytes (what the fabric charges)."""
        return len(self.to_bytes())

    @classmethod
    def from_bytes(cls, raw: bytes) -> "HttpResponse":
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode(errors="replace").split(_CRLF)
        if not lines or not lines[0]:
            raise HttpError("empty response")
        parts = lines[0].split(" ", 2)
        if len(parts) < 2:
            raise HttpError("malformed status line: {!r}".format(lines[0]))
        version = parts[0]
        try:
            status = int(parts[1])
        except ValueError:
            raise HttpError("bad status code: {!r}".format(parts[1])) from None
        headers = HeaderBag.parse([line for line in lines[1:] if line])
        return cls(status=status, headers=headers, body=body, version=version)

"""HTTP/1.1 message model with real serialisation and parsing.

Requests and responses round-trip through actual HTTP/1.1 bytes so the
simulated wire carries authentic sizes, and so header-dependent logic
(the BrightData ``X-luminati-*`` timing headers, DoH content types) is
exercised against a real parser rather than dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["HeaderBag", "HttpError", "HttpRequest", "HttpResponse", "Status"]

_CRLF = "\r\n"


class HttpError(ValueError):
    """Malformed HTTP data."""


class Status:
    """Status codes the reproduction uses."""

    OK = 200
    BAD_REQUEST = 400
    FORBIDDEN = 403
    NOT_FOUND = 404
    REQUEST_TIMEOUT = 408
    BAD_GATEWAY = 502
    GATEWAY_TIMEOUT = 504

    REASONS = {
        200: "OK",
        400: "Bad Request",
        403: "Forbidden",
        404: "Not Found",
        408: "Request Timeout",
        502: "Bad Gateway",
        504: "Gateway Timeout",
    }

    @classmethod
    def reason(cls, code: int) -> str:
        return cls.REASONS.get(code, "Unknown")


class HeaderBag:
    """Case-insensitive, order-preserving header collection.

    The bag carries a mutation counter (``_version``) so message-level
    wire caches can detect header changes without comparing contents.
    """

    def __init__(self, items: Optional[List[Tuple[str, str]]] = None) -> None:
        self._items: List[Tuple[str, str]] = []
        #: Lowercased names, parallel to ``_items`` — lookups scan this
        #: with C-level ``in``/``index`` instead of lowering every
        #: stored name per probe.
        self._lower: List[str] = []
        self._version = 0
        if items:
            for name, value in items:
                self.add(name, value)

    def add(self, name: str, value: str) -> None:
        """Append a header (CRLF injection rejected)."""
        if "\r" in name or "\n" in name or "\r" in value or "\n" in value:
            raise HttpError("CRLF in header")
        self._items.append((name, str(value)))
        self._lower.append(name.lower())
        self._version += 1

    def set(self, name: str, value: str) -> None:
        """Replace all values of *name* with one."""
        self.remove(name)
        self.add(name, value)

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """First value of *name*, or *default*."""
        lowered = name.lower()
        lower = self._lower
        if lowered in lower:
            return self._items[lower.index(lowered)][1]
        return default

    def get_all(self, name: str) -> List[str]:
        """Every value of *name*, in order."""
        lowered = name.lower()
        return [
            item[1]
            for low, item in zip(self._lower, self._items)
            if low == lowered
        ]

    def remove(self, name: str) -> None:
        """Drop all values of *name*.

        Removing an absent name leaves the bag's mutation counter
        untouched: the contents are unchanged, so wire caches keyed on
        the version stay valid.
        """
        lowered = name.lower()
        lower = self._lower
        if lowered not in lower:
            return
        items = self._items
        keep = [index for index, low in enumerate(lower) if low != lowered]
        self._items = [items[index] for index in keep]
        self._lower = [lower[index] for index in keep]
        self._version += 1

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._lower

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def copy(self) -> "HeaderBag":
        """An independent copy of the bag."""
        bag = HeaderBag()
        bag._items = list(self._items)
        bag._lower = list(self._lower)
        return bag

    def serialize(self) -> str:
        """The header block as CRLF-terminated lines."""
        return "".join(
            "{}: {}{}".format(name, value, _CRLF) for name, value in self._items
        )

    @classmethod
    def parse(cls, lines: List[str]) -> "HeaderBag":
        bag = cls()
        for line in lines:
            if ":" not in line:
                raise HttpError("malformed header line: {!r}".format(line))
            name, _, value = line.partition(":")
            bag.add(name.strip(), value.strip())
        return bag


@dataclass
class HttpRequest:
    """An HTTP/1.1 request."""

    method: str
    target: str
    headers: HeaderBag = field(default_factory=HeaderBag)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def __post_init__(self) -> None:
        if self.body and "content-length" not in self.headers:
            self.headers.set("Content-Length", str(len(self.body)))
        self._cache: Optional[tuple] = None

    @property
    def host(self) -> Optional[str]:
        return self.headers.get("Host")

    def to_bytes(self) -> bytes:
        """Serialise to HTTP/1.1 wire bytes.

        Serialisation is cached and reused until the message mutates:
        header edits bump the bag's version counter, and rebinding any
        field replaces the object identity the cache key pins.
        """
        cache = self._cache
        headers = self.headers
        if (
            cache is not None
            and cache[0] is headers
            and cache[1] == headers._version
            and cache[2] is self.body
            and cache[3] is self.method
            and cache[4] is self.target
            and cache[5] is self.version
        ):
            return cache[6]
        start = "{} {} {}{}".format(self.method, self.target, self.version, _CRLF)
        wire = (start + headers.serialize() + _CRLF).encode() + self.body
        self._cache = (
            headers, headers._version, self.body,
            self.method, self.target, self.version, wire,
        )
        return wire

    def wire_size(self) -> int:
        """Serialised size in bytes (what the fabric charges).

        Reuses the cached serialisation, so accounting a message's size
        and then transmitting it encodes the bytes only once.
        """
        return len(self.to_bytes())

    @classmethod
    def from_bytes(cls, raw: bytes) -> "HttpRequest":
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode(errors="replace").split(_CRLF)
        if not lines or not lines[0]:
            raise HttpError("empty request")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise HttpError("malformed request line: {!r}".format(lines[0]))
        method, target, version = parts
        headers = HeaderBag.parse([line for line in lines[1:] if line])
        return cls(
            method=method,
            target=target,
            headers=headers,
            body=body,
            version=version,
        )


@dataclass
class HttpResponse:
    """An HTTP/1.1 response."""

    status: int
    headers: HeaderBag = field(default_factory=HeaderBag)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def __post_init__(self) -> None:
        if self.body and "content-length" not in self.headers:
            self.headers.set("Content-Length", str(len(self.body)))
        self._cache: Optional[tuple] = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def to_bytes(self) -> bytes:
        """Serialise to HTTP/1.1 wire bytes.

        Cached until the message mutates — see
        :meth:`HttpRequest.to_bytes` for the invalidation rules.
        """
        cache = self._cache
        headers = self.headers
        if (
            cache is not None
            and cache[0] is headers
            and cache[1] == headers._version
            and cache[2] is self.body
            and cache[3] == self.status
            and cache[4] is self.version
        ):
            return cache[5]
        start = "{} {} {}{}".format(
            self.version, self.status, Status.reason(self.status), _CRLF
        )
        wire = (start + headers.serialize() + _CRLF).encode() + self.body
        self._cache = (
            headers, headers._version, self.body, self.status, self.version, wire,
        )
        return wire

    def wire_size(self) -> int:
        """Serialised size in bytes (what the fabric charges).

        Reuses the cached serialisation, so accounting a message's size
        and then transmitting it encodes the bytes only once.
        """
        return len(self.to_bytes())

    @classmethod
    def from_bytes(cls, raw: bytes) -> "HttpResponse":
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode(errors="replace").split(_CRLF)
        if not lines or not lines[0]:
            raise HttpError("empty response")
        parts = lines[0].split(" ", 2)
        if len(parts) < 2:
            raise HttpError("malformed status line: {!r}".format(lines[0]))
        version = parts[0]
        try:
            status = int(parts[1])
        except ValueError:
            raise HttpError("bad status code: {!r}".format(parts[1])) from None
        headers = HeaderBag.parse([line for line in lines[1:] if line])
        return cls(status=status, headers=headers, body=body, version=version)

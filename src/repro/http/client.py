"""HTTP client over simulated TCP or TLS streams.

Both :class:`repro.netsim.sockets.TcpConnection` and
:class:`repro.tls.session.TlsConnection` expose the same
``send``/``recv`` surface, so one client serves plain HTTP, HTTPS and
tunnelled traffic alike.  Requests and responses travel as parsed
objects but are charged their true serialised sizes.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.http.message import HttpError, HttpRequest, HttpResponse
from repro.netsim.sockets import TcpConnection
from repro.tls.session import TlsConnection

__all__ = ["HttpClient", "request_over"]

Stream = Union[TcpConnection, TlsConnection]


def request_over(stream: Stream, request: HttpRequest,
                 timeout_ms: Optional[float] = None):
    """Send *request* on *stream*, await the response (generator).

    Returns the :class:`HttpResponse`.  Raises
    :class:`~repro.http.message.HttpError` if the peer sends something
    that is not a response.
    """
    stream.send(request, request.wire_size())
    reply = yield stream.recv(timeout_ms=timeout_ms)
    if not isinstance(reply, HttpResponse):
        raise HttpError("expected HttpResponse, got {!r}".format(type(reply)))
    return reply


class HttpClient:
    """A persistent-connection HTTP client bound to one stream."""

    def __init__(self, stream: Stream,
                 default_timeout_ms: Optional[float] = None) -> None:
        self.stream = stream
        self.default_timeout_ms = default_timeout_ms
        self.requests_sent = 0

    def request(self, request: HttpRequest,
                timeout_ms: Optional[float] = None):
        """Issue one request; generator returning the response."""
        self.requests_sent += 1
        response = yield from request_over(
            self.stream,
            request,
            timeout_ms=timeout_ms or self.default_timeout_ms,
        )
        return response

    def get(self, target: str, host: str = "",
            timeout_ms: Optional[float] = None):
        """Convenience GET; generator returning the response."""
        request = HttpRequest(method="GET", target=target)
        if host:
            request.headers.set("Host", host)
        response = yield from self.request(request, timeout_ms=timeout_ms)
        return response

    def close(self) -> None:
        """Close the underlying stream."""
        self.stream.close()

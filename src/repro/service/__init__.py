"""The always-on longitudinal availability service.

One-shot campaigns answer the paper's questions; the service answers
the follow-up the longitudinal literature asks (Sharma & Feamster;
Hounsel et al.): what happens to resolver availability *over time*,
under an Internet that keeps degrading and healing?  The service
re-measures the same fleet in *epochs*, each under an evolving
deterministic fault schedule (:mod:`repro.faults.epochs`), and keeps
an accumulated dataset plus an availability/SLO artifact
(:mod:`repro.analysis.availability`) fresh at every epoch boundary.

Modules:

* :mod:`repro.service.paths` — the service directory layout, in one
  place (manifest, journal, dataset, epoch checkpoints, quarantine);
* :mod:`repro.service.journal` — the crash journal: checksummed,
  fsync'd epoch-boundary events on the ``repro.ckpt`` ledger format;
* :mod:`repro.service.supervisor` — the epoch loop with graceful
  signal shutdown, per-epoch watchdog, bounded retries, and
  checkpoint quarantine.

See ``docs/availability.md`` for the lifecycle and the determinism
contract.
"""

from repro.service.journal import JournalCorruptError, ServiceJournal
from repro.service.supervisor import (
    EXIT_EPOCH_FAILED,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_QUARANTINE,
    EpochDeadlineExceeded,
    EpochFailedError,
    GracefulShutdown,
    QuarantinedCheckpointError,
    ServiceConfig,
    ServiceError,
    ServiceSupervisor,
)

__all__ = [
    "EXIT_EPOCH_FAILED",
    "EXIT_INTERRUPTED",
    "EXIT_OK",
    "EXIT_QUARANTINE",
    "EpochDeadlineExceeded",
    "EpochFailedError",
    "GracefulShutdown",
    "JournalCorruptError",
    "QuarantinedCheckpointError",
    "ServiceConfig",
    "ServiceError",
    "ServiceJournal",
    "ServiceSupervisor",
]

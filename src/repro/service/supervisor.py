"""The epoch supervisor: an always-on longitudinal campaign service.

``repro service run`` turns the one-shot campaign into a *service*:
the same fleet is re-measured epoch after epoch under an evolving
deterministic fault schedule (:mod:`repro.faults.epochs`), each epoch
a full checkpointed campaign in its own directory.  The accumulated
dataset and the availability/SLO artifact are republished atomically
at every epoch boundary — never mid-epoch, so a reader (or a kill)
only ever observes pre-epoch or post-epoch state.

Robustness posture (the reason this module exists):

* **graceful SIGTERM/SIGINT** — the first signal raises
  :class:`GracefulShutdown` in the main thread; every byte already
  committed is crash-safe by construction (ledgers are fsync'd,
  artifacts are atomic renames), so stopping anywhere is safe.  The
  supervisor journals the shutdown and exits ``EXIT_INTERRUPTED``;
* **watchdog deadline per epoch** — ``SIGALRM`` bounds each epoch
  attempt; an overrunning epoch is aborted and retried, and because
  retries resume from the epoch's checkpoint, progress across
  attempts is monotonic;
* **bounded retry with backoff** — epoch failures (deadline, worker
  loss, simulation errors) retry up to ``max_epoch_retries`` times
  with linear backoff before the service exits ``EXIT_EPOCH_FAILED``;
* **quarantine, never overwrite** — a checkpoint that fails
  verification with mid-file corruption is moved under
  ``<dir>/quarantine/`` with its bytes intact and the service exits
  ``EXIT_QUARANTINE``; restoring the bytes and running ``repro
  service resume`` picks up where it left off;
* **crash journal** — every epoch boundary, retry, shutdown and
  quarantine is appended (checksummed, fsync'd) to
  ``journal.jsonl``; ``repro service resume`` continues at the exact
  epoch boundary the journal proves.

Determinism contract: the accumulated dataset bytes are a pure
function of the service identity (master seed, scale, epochs, runs
per epoch, shard count, batch size, providers, fault schedule
parameters) — independent of worker count, kills, retries, resumes,
or wall clock.  The soak drill (``tools/service_soak.py``) enforces
this in CI by SIGKILLing a run mid-epoch and byte-diffing the
recovered dataset against an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Tuple

from repro.analysis.availability import (
    availability_report,
    render_availability_table,
)
from repro.ckpt.checkpoint import CampaignCheckpoint, CheckpointError
from repro.ckpt.quarantine import quarantine_checkpoint, verify_checkpoint_dir
from repro.core.config import ReproConfig
from repro.dataset.store import Dataset
from repro.faults.epochs import EpochScheduleParams, epoch_fault_plan
from repro.ioutil import atomic_write_json
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.metrics import MetricsRegistry
from repro.parallel.executor import run_parallel_campaign
from repro.proxy.population import PopulationConfig
from repro.service import paths
from repro.service.journal import ServiceJournal

__all__ = [
    "EXIT_EPOCH_FAILED",
    "EXIT_INTERRUPTED",
    "EXIT_OK",
    "EXIT_QUARANTINE",
    "EpochDeadlineExceeded",
    "EpochFailedError",
    "GracefulShutdown",
    "QuarantinedCheckpointError",
    "ServiceConfig",
    "ServiceError",
    "ServiceSupervisor",
    "epoch_client_seed_offset",
]

#: Service process exit codes (``repro service run``/``resume``).
EXIT_OK = 0
EXIT_INTERRUPTED = 3   # graceful SIGTERM/SIGINT; resumable
EXIT_QUARANTINE = 4    # a checkpoint was quarantined; operator needed
EXIT_EPOCH_FAILED = 5  # an epoch failed every retry


class ServiceError(Exception):
    """Base class for supervisor failures."""


class GracefulShutdown(Exception):
    """Raised in the main thread when SIGTERM/SIGINT arrives."""

    def __init__(self, signum: int) -> None:
        super().__init__("received signal {}".format(signum))
        self.signum = signum


class EpochDeadlineExceeded(ServiceError):
    """The per-epoch watchdog (SIGALRM) fired."""


class EpochFailedError(ServiceError):
    """An epoch failed on every attempt."""


class QuarantinedCheckpointError(ServiceError):
    """A corrupt checkpoint was moved aside; the service must stop."""

    def __init__(self, message: str, destination: str) -> None:
        super().__init__(message)
        self.destination = destination


@dataclass(frozen=True)
class ServiceConfig:
    """Identity + runtime knobs of one longitudinal service.

    The *identity* fields define the experiment — they are hashed into
    the service fingerprint, persisted in ``service.json``, and must
    match on resume.  The *runtime* fields (workers, deadline, retry
    policy) only shape this process's execution and may differ between
    runs without changing a single dataset byte.
    """

    directory: str
    # -- identity ----------------------------------------------------------
    master_seed: int = 20210402
    scale: float = 0.05
    epochs: int = 3
    runs_per_epoch: int = 2
    num_shards: int = 4
    batch_size: int = 400
    providers: Tuple[str, ...] = (
        "cloudflare", "google", "nextdns", "quad9",
    )
    faults_enabled: bool = True
    fault_params: EpochScheduleParams = field(
        default_factory=EpochScheduleParams
    )
    slo_target: float = 0.99
    # -- runtime -----------------------------------------------------------
    workers: int = 1
    epoch_deadline_s: Optional[float] = None
    max_epoch_retries: int = 2
    retry_backoff_s: float = 1.0

    _IDENTITY_FIELDS = (
        "master_seed", "scale", "epochs", "runs_per_epoch", "num_shards",
        "batch_size", "providers", "faults_enabled", "fault_params",
        "slo_target",
    )

    def identity(self) -> Dict:
        """The experiment-defining fields as a plain dict."""
        out: Dict = {}
        for name in self._IDENTITY_FIELDS:
            value = getattr(self, name)
            if name == "fault_params":
                value = {
                    f.name: getattr(value, f.name)
                    for f in fields(EpochScheduleParams)
                }
            elif name == "providers":
                value = list(value)
            out[name] = value
        return out

    def fingerprint(self) -> str:
        """Stable digest of the identity (resume gate)."""
        canonical = json.dumps(self.identity(), sort_keys=True)
        return hashlib.blake2b(
            canonical.encode("utf-8"), digest_size=16
        ).hexdigest()

    def epoch_config(self, epoch: int) -> ReproConfig:
        """The campaign config of one epoch — pure in the identity.

        The world (topology, fleet, seeds) is identical in every epoch;
        only the fault schedule evolves, via
        :func:`repro.faults.epochs.epoch_fault_plan`.
        """
        faults = None
        if self.faults_enabled:
            faults = epoch_fault_plan(
                self.master_seed, epoch, self.providers, self.fault_params
            )
        return ReproConfig(
            seed=self.master_seed,
            population=PopulationConfig(scale=self.scale),
            providers=tuple(self.providers),
            runs_per_client=self.runs_per_epoch,
            batch_size=self.batch_size,
            faults=faults,
        )

    @classmethod
    def from_identity(
        cls, directory: str, identity: Dict, **runtime
    ) -> "ServiceConfig":
        """Rebuild a config from a stored identity dict (resume)."""
        data = dict(identity)
        data["providers"] = tuple(data.get("providers", ()))
        data["fault_params"] = EpochScheduleParams(
            **data.get("fault_params", {})
        )
        return cls(directory=directory, **data, **runtime)


def epoch_client_seed_offset(epoch: int) -> int:
    """Shift of every client RNG stream in *epoch*.

    Epoch 0 uses the unshifted streams (it is bit-for-bit a plain
    campaign); later epochs are pushed far past every shard/Atlas/
    extension stream so no two epochs ever share a query-name RNG.
    The per-epoch name prefix (``e<N>-``) makes uniqueness structural
    on top of that.
    """
    if epoch < 0:
        raise ValueError("epoch must be >= 0")
    return epoch * 9999991


# -- signal plumbing -------------------------------------------------------


@contextmanager
def _shutdown_guard():
    """Raise :class:`GracefulShutdown` on the first SIGTERM/SIGINT.

    Only the first signal raises (repeat deliveries while unwinding are
    ignored); handlers are restored on exit.  Outside the main thread
    (no signal access) this is a no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    fired = {"done": False}

    def handler(signum, _frame):
        if fired["done"]:
            return
        fired["done"] = True
        raise GracefulShutdown(signum)

    previous = {
        signum: signal.signal(signum, handler)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        yield
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)


@contextmanager
def _epoch_deadline(seconds: Optional[float]):
    """Arm a SIGALRM watchdog for one epoch attempt."""
    if (
        seconds is None
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def handler(_signum, _frame):
        raise EpochDeadlineExceeded(
            "epoch exceeded its {:.1f}s watchdog deadline".format(seconds)
        )

    previous = signal.signal(signal.SIGALRM, handler)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _file_digest(path: str) -> str:
    with open(path, "rb") as handle:
        return hashlib.blake2b(handle.read(), digest_size=16).hexdigest()


# -- the supervisor --------------------------------------------------------


class ServiceSupervisor:
    """Owns one service directory and drives its epochs."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.directory = config.directory
        self.fingerprint = config.fingerprint()
        self.metrics = MetricsRegistry()
        #: Dataset accumulated across completed epochs (in memory).
        self._dataset: Optional[Dataset] = None
        #: Warm worker pool shared by every epoch's campaign (created
        #: lazily when ``config.workers > 1``, closed when the service
        #: run ends) — epochs re-prime it instead of respawning
        #: processes, so only the first epoch pays pool startup.
        self._pool = None
        self._log = print

    # -- service manifest --------------------------------------------------

    def _write_service_manifest(self, status: str) -> None:
        manifest = {
            "version": 1,
            "fingerprint": self.fingerprint,
            "identity": self.config.identity(),
            "status": status,
            "updated_unix": int(time.time()),
        }
        path = paths.service_manifest_path(self.directory)
        existing = self._read_service_manifest()
        if existing is not None:
            manifest["created_unix"] = existing.get(
                "created_unix", manifest["updated_unix"]
            )
        else:
            manifest["created_unix"] = manifest["updated_unix"]
        atomic_write_json(
            path, manifest, indent=2, sort_keys=True,
            trailing_newline=True,
        )

    def _read_service_manifest(self) -> Optional[Dict]:
        try:
            with open(paths.service_manifest_path(self.directory)) as f:
                return json.load(f)
        except FileNotFoundError:
            return None
        except ValueError as exc:
            raise ServiceError(
                "unreadable service manifest in {!r}: {}".format(
                    self.directory, exc
                )
            )

    # -- entry points ------------------------------------------------------

    def run(self, fresh: bool = True) -> int:
        """Start (*fresh*) or continue (``fresh=False``) the service.

        Returns a process exit code (:data:`EXIT_OK`,
        :data:`EXIT_INTERRUPTED`, :data:`EXIT_QUARANTINE`, or
        :data:`EXIT_EPOCH_FAILED`).
        """
        existing = self._read_service_manifest()
        if fresh and existing is not None:
            raise ServiceError(
                "service directory {!r} already holds a service "
                "(fingerprint {}); use 'repro service resume'".format(
                    self.directory, existing.get("fingerprint", "?")
                )
            )
        if not fresh:
            if existing is None:
                raise ServiceError(
                    "no service manifest in {!r}; use 'repro service "
                    "run' to start one".format(self.directory)
                )
            if existing.get("fingerprint") != self.fingerprint:
                raise ServiceError(
                    "cannot resume {!r}: stored identity fingerprint {} "
                    "does not match this configuration's {} (master "
                    "seed, scale, epochs, shards, batch size, providers "
                    "and fault parameters must all match)".format(
                        self.directory,
                        existing.get("fingerprint"), self.fingerprint,
                    )
                )
        os.makedirs(self.directory, exist_ok=True)
        self._write_service_manifest("in-progress")

        journal = ServiceJournal(
            paths.journal_path(self.directory), self.fingerprint
        )
        try:
            with journal, _shutdown_guard():
                return self._run_guarded(journal)
        finally:
            if self._pool is not None:
                self._pool.close()
                self._pool = None

    def _run_guarded(self, journal: ServiceJournal) -> int:
        try:
            return self._supervise(journal)
        except GracefulShutdown as exc:
            journal.append(
                "shutdown",
                {
                    "signal": int(exc.signum),
                    "epoch_in_flight": journal.next_epoch(),
                },
            )
            self._write_service_manifest("interrupted")
            self._log(
                "service interrupted by signal {}; every committed "
                "batch is safe — 'repro service resume' continues "
                "at epoch {}".format(
                    exc.signum, journal.next_epoch()
                )
            )
            return EXIT_INTERRUPTED
        except QuarantinedCheckpointError as exc:
            self._write_service_manifest("quarantined")
            self._log("QUARANTINE: {}".format(exc))
            return EXIT_QUARANTINE
        except EpochFailedError as exc:
            self._write_service_manifest("failed")
            self._log("epoch failed permanently: {}".format(exc))
            return EXIT_EPOCH_FAILED

    # -- the epoch loop ----------------------------------------------------

    def _supervise(self, journal: ServiceJournal) -> int:
        config = self.config
        self.metrics.set_gauge("service.epochs_total", float(config.epochs))
        done = journal.epochs_done()
        self._dataset = None

        for epoch in range(config.epochs):
            directory = paths.epoch_dir(self.directory, epoch)
            self._check_epoch_checkpoint(journal, epoch, directory)
            if epoch in done:
                # Completed in an earlier run: replay from the cached
                # checkpoint results (no measuring, no world build) and
                # verify the journal's recorded digest still matches.
                epoch_dataset = self._run_epoch_campaign(epoch, directory)
                self._accumulate(epoch_dataset)
                self._verify_replayed_epoch(journal, epoch, done[epoch])
                self.metrics.set_gauge(
                    "service.epochs_done", float(epoch + 1)
                )
                continue
            self._run_epoch_with_retries(journal, epoch, directory)

        if not journal.service_complete():
            journal.append(
                "service-done",
                {"epochs": config.epochs,
                 "dataset_digest": self._dataset_digest()},
            )
        self._write_service_manifest("complete")
        self._log(
            "service complete: {} epoch(s), dataset at {}".format(
                config.epochs, paths.dataset_path(self.directory)
            )
        )
        return EXIT_OK

    def _run_epoch_with_retries(
        self, journal: ServiceJournal, epoch: int, directory: str
    ) -> None:
        config = self.config
        attempts = 1 + max(0, config.max_epoch_retries)
        plan = (
            config.epoch_config(epoch).faults
            if config.faults_enabled else None
        )
        for attempt in range(attempts):
            journal.append(
                "epoch-start",
                {
                    "epoch": epoch,
                    "attempt": attempt,
                    "fault_plan": repr(plan),
                    "run_index_offset": epoch * config.runs_per_epoch,
                },
            )
            self._log(
                "epoch {}/{} (attempt {}): measuring under {}".format(
                    epoch, config.epochs - 1, attempt,
                    "evolving faults" if plan is not None else "no faults",
                )
            )
            try:
                with _epoch_deadline(config.epoch_deadline_s):
                    epoch_dataset = self._run_epoch_campaign(
                        epoch, directory
                    )
            except (GracefulShutdown, QuarantinedCheckpointError):
                raise
            except Exception as exc:
                self.metrics.inc("service.epoch_retries")
                journal.append(
                    "epoch-retry",
                    {
                        "epoch": epoch,
                        "attempt": attempt,
                        "error": "{}: {}".format(
                            type(exc).__name__, exc
                        ),
                    },
                )
                if attempt + 1 >= attempts:
                    raise EpochFailedError(
                        "epoch {} failed after {} attempt(s); last "
                        "error: {}".format(epoch, attempts, exc)
                    )
                backoff = config.retry_backoff_s * (attempt + 1)
                self._log(
                    "epoch {} attempt {} failed ({}); retrying in "
                    "{:.1f}s from the epoch checkpoint".format(
                        epoch, attempt, exc, backoff
                    )
                )
                if backoff > 0:
                    time.sleep(backoff)
                continue
            self._accumulate(epoch_dataset)
            digest = self._publish(epoch)
            journal.append(
                "epoch-done",
                {
                    "epoch": epoch,
                    "attempt": attempt,
                    "dataset_digest": digest,
                    "clients": len(self._dataset.clients),
                    "doh": len(self._dataset.doh),
                    "do53": len(self._dataset.do53),
                },
            )
            self._record_lineage(epoch, directory, digest)
            self.metrics.set_gauge("service.epochs_done", float(epoch + 1))
            return

    def _run_epoch_campaign(self, epoch: int, directory: str) -> Dataset:
        """One epoch = one checkpointed sharded campaign."""
        config = self.config
        result = run_parallel_campaign(
            config.epoch_config(epoch),
            workers=config.workers,
            num_shards=config.num_shards,
            atlas_probes_per_country=0,
            checkpoint_dir=directory,
            resume="auto",
            run_index_offset=epoch * config.runs_per_epoch,
            client_seed_offset=epoch_client_seed_offset(epoch),
            name_prefix="e{}-".format(epoch),
            pool=self._campaign_pool(),
        )
        return result.dataset

    def _campaign_pool(self):
        """The service-lifetime warm pool, or None for inline epochs.

        One pool serves every epoch: each epoch's campaign re-primes it
        with that epoch's config (worlds rebuild, processes persist),
        so pool startup is paid once per service run instead of once
        per epoch.
        """
        if self.config.workers <= 1:
            return None
        if self._pool is None:
            from repro.parallel.pool import WarmWorkerPool

            self._pool = WarmWorkerPool(self.config.workers)
        return self._pool

    # -- checkpoint health -------------------------------------------------

    def _check_epoch_checkpoint(
        self, journal: ServiceJournal, epoch: int, directory: str
    ) -> None:
        """Verify (and if needed quarantine) an epoch's checkpoint."""
        if not os.path.isdir(directory):
            return
        try:
            health = verify_checkpoint_dir(directory)
        except CheckpointError:
            # A directory without a usable manifest: if it holds no
            # sample ledgers it is an empty husk from a crash before
            # the first write and is safe to adopt; with ledgers it is
            # somebody's data — move it aside.
            if not paths.ledger_paths(directory):
                return
            destination = quarantine_checkpoint(
                directory,
                paths.quarantine_root(self.directory),
                reason="ledgers present but checkpoint manifest "
                       "unreadable",
            )
            self._journal_quarantine(
                journal, epoch, destination, "manifest unreadable"
            )
            raise QuarantinedCheckpointError(
                "epoch {} checkpoint had ledgers but no readable "
                "manifest; moved to {!r}".format(epoch, destination),
                destination,
            )
        if health.resumable:
            return
        reason = "; ".join(health.problems) or health.status
        destination = quarantine_checkpoint(
            directory,
            paths.quarantine_root(self.directory),
            reason=reason,
        )
        self._journal_quarantine(journal, epoch, destination, reason)
        self.metrics.inc("service.quarantines")
        raise QuarantinedCheckpointError(
            "epoch {} checkpoint failed verification ({}); original "
            "bytes preserved at {!r}. Restore the checkpoint and run "
            "'repro service resume', or delete the quarantined copy to "
            "re-measure the epoch from scratch.".format(
                epoch, reason, destination
            ),
            destination,
        )

    @staticmethod
    def _journal_quarantine(
        journal: ServiceJournal, epoch: int, destination: str, reason: str
    ) -> None:
        journal.append(
            "quarantine",
            {"epoch": epoch, "moved_to": destination, "reason": reason},
        )

    def _verify_replayed_epoch(
        self, journal: ServiceJournal, epoch: int, recorded: Dict
    ) -> None:
        """A replayed epoch must reproduce its journalled digest."""
        digest = self._dataset_digest()
        if digest != recorded.get("dataset_digest"):
            raise ServiceError(
                "replaying epoch {} produced dataset digest {} but the "
                "journal recorded {} — the epoch checkpoints no longer "
                "reproduce the published dataset (damaged or foreign "
                "result blobs?). Quarantine-inspect {!r} before "
                "trusting this service directory.".format(
                    epoch, digest,
                    recorded.get("dataset_digest"),
                    paths.epoch_dir(self.directory, epoch),
                )
            )

    # -- dataset + artifacts ----------------------------------------------

    def _accumulate(self, epoch_dataset: Dataset) -> None:
        if self._dataset is None:
            self._dataset = epoch_dataset
        else:
            self._dataset = self._dataset.merge(epoch_dataset)

    def _dataset_digest(self) -> str:
        canonical = json.dumps(
            self._dataset.to_json(), sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.blake2b(
            canonical.encode("utf-8"), digest_size=16
        ).hexdigest()

    def _publish(self, through_epoch: int) -> str:
        """Atomically republish dataset + availability + manifest.

        Called only at epoch boundaries; a kill at any moment leaves
        the previously published (complete) artifacts in place.
        Returns the dataset digest.
        """
        config = self.config
        dataset_file = paths.dataset_path(self.directory)
        self._dataset.save(dataset_file)

        report = availability_report(
            self._dataset,
            runs_per_epoch=config.runs_per_epoch,
            epochs=through_epoch + 1,
            slo_target=config.slo_target,
        )
        atomic_write_json(
            paths.availability_path(self.directory), report,
            indent=2, sort_keys=True, trailing_newline=True,
        )

        manifest = build_manifest(
            config.epoch_config(through_epoch),
            dataset=self._dataset,
            dataset_path=dataset_file,
            workers=config.workers,
            num_shards=config.num_shards,
            command="service (epochs 0..{})".format(through_epoch),
            availability=_availability_summary(report),
            service={
                "fingerprint": self.fingerprint,
                "directory": self.directory,
                "epochs_completed": through_epoch + 1,
                "epochs_target": config.epochs,
                "runs_per_epoch": config.runs_per_epoch,
                "master_seed": config.master_seed,
                "metrics": self.metrics.snapshot(),
            },
        )
        write_manifest(
            paths.manifest_sidecar_path(self.directory), manifest
        )
        self._log(render_availability_table(report))
        return self._dataset_digest()

    def _record_lineage(
        self, epoch: int, directory: str, digest: str
    ) -> None:
        """Chain this epoch into its checkpoint manifest's lineage."""
        previous = ""
        if epoch > 0:
            try:
                previous = CampaignCheckpoint.load(
                    paths.epoch_dir(self.directory, epoch - 1)
                ).fingerprint
            except CheckpointError:
                previous = ""
        checkpoint = CampaignCheckpoint.load(directory)
        checkpoint.add_lineage(
            {
                "service_epoch": epoch,
                "service_fingerprint": self.fingerprint,
                "previous_epoch_fingerprint": previous,
                "dataset_digest": digest,
            }
        )


def _availability_summary(report: Dict) -> Dict:
    """The compact availability block embedded in the run manifest."""
    return {
        "epochs": report["epochs"],
        "runs_per_epoch": report["runs_per_epoch"],
        "slo_target": report["slo_target"],
        "providers": {
            name: {
                "availability": entry["availability"],
                "slo_met": entry["slo_met"],
                "outages": len(entry["outages"]),
            }
            for name, entry in report["providers"].items()
        },
    }

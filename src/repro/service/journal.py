"""The service crash journal: what happened, at which epoch boundary.

Reuses the checksummed append-only ledger format
(:mod:`repro.ckpt.ledger`) — fsync'd JSON Lines with BLAKE2b record
checksums, sequence contiguity, and torn-tail recovery — so a SIGKILL
mid-append can never leave an ambiguous journal.  Record kinds:

* ``header``        — service fingerprint + format tag (always first),
* ``epoch-start``   — epoch index, attempt number, fault-plan repr,
* ``epoch-done``    — epoch index, dataset digest, sample counters,
* ``epoch-retry``   — epoch index, the error, backoff applied,
* ``quarantine``    — epoch index, reason, where the bytes went,
* ``shutdown``      — signal name, the epoch in flight,
* ``service-done``  — every epoch finished.

``repro service resume`` reads the journal to find the exact epoch
boundary to pick up from; ``repro service status`` renders it.  The
``epoch-start`` fault-plan repr makes the epoch/seed determinism
contract auditable: re-deriving ``epoch_fault_plan(master_seed, n)``
must reproduce the recorded repr exactly (asserted in tests).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.ckpt.ledger import (
    CheckpointCorruptionError,
    LedgerReader,
    LedgerRecord,
    LedgerWriter,
    read_ledger,
)

__all__ = ["JournalCorruptError", "ServiceJournal"]

FORMAT_TAG = "service-journal-v1"


class JournalCorruptError(Exception):
    """The crash journal is damaged mid-file (not just a torn tail)."""


class ServiceJournal:
    """Append-only event log for one service directory."""

    def __init__(self, path: str, fingerprint: str) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.records: List[LedgerRecord] = []
        self._writer: Optional[LedgerWriter] = None

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> "ServiceJournal":
        """Load (verifying checksums), truncate any torn tail, and
        open for appending.  Creates the journal if absent."""
        try:
            load = read_ledger(self.path)
        except CheckpointCorruptionError as exc:
            raise JournalCorruptError(
                "service journal {!r} is corrupt mid-file: {}. The "
                "journal is the service's source of truth; restore it "
                "from a copy (nothing was deleted) before resuming."
                .format(self.path, exc)
            )
        fresh = load is None or not load.records
        if load is not None and (load.dropped_tail or not load.records):
            LedgerReader.truncate_to(
                self.path, load.clean_bytes if load.records else 0
            )
        if not fresh:
            header = load.records[0].payload
            if header.get("fingerprint") != self.fingerprint:
                raise JournalCorruptError(
                    "service journal {!r} belongs to a different service "
                    "(stored fingerprint {}, expected {})".format(
                        self.path, header.get("fingerprint"),
                        self.fingerprint,
                    )
                )
            if header.get("format") != FORMAT_TAG:
                raise JournalCorruptError(
                    "service journal {!r} has unsupported format {!r}"
                    .format(self.path, header.get("format"))
                )
            self.records = list(load.records)
        self._writer = LedgerWriter(
            self.path, next_seq=len(self.records)
        )
        if fresh:
            self.append(
                "header",
                {"fingerprint": self.fingerprint, "format": FORMAT_TAG},
            )
        return self

    def close(self) -> None:
        """Release the journal file handle (safe to call twice)."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def __enter__(self) -> "ServiceJournal":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- appends -----------------------------------------------------------

    def append(self, kind: str, payload: Dict[str, Any]) -> None:
        """Append one fsync'd event record."""
        if self._writer is None:
            raise RuntimeError("journal is not open")
        self._writer.append(kind, payload)
        self.records.append(
            LedgerRecord(
                kind=kind, seq=len(self.records), payload=payload
            )
        )

    # -- queries (all pure over self.records) ------------------------------

    def events(self, kind: str) -> List[Dict[str, Any]]:
        """Payloads of every record of *kind*, in append order."""
        return [r.payload for r in self.records if r.kind == kind]

    def epochs_done(self) -> Dict[int, Dict[str, Any]]:
        """Completed epochs: index -> the latest epoch-done payload."""
        done: Dict[int, Dict[str, Any]] = {}
        for payload in self.events("epoch-done"):
            done[int(payload["epoch"])] = payload
        return done

    def next_epoch(self) -> int:
        """The first epoch without an epoch-done record."""
        done = self.epochs_done()
        epoch = 0
        while epoch in done:
            epoch += 1
        return epoch

    def service_complete(self) -> bool:
        """Whether a ``service-done`` record has been journalled."""
        return any(r.kind == "service-done" for r in self.records)

    def epoch_start_payload(self, epoch: int) -> Optional[Dict[str, Any]]:
        """The first epoch-start record for *epoch* (plan audit)."""
        for payload in self.events("epoch-start"):
            if int(payload["epoch"]) == epoch:
                return payload
        return None

    # -- convenience -------------------------------------------------------

    def exists(self) -> bool:
        """Whether the journal file exists on disk."""
        return os.path.exists(self.path)

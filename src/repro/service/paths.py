"""The on-disk layout of a service directory, in one place.

Everything the supervisor, the CLI, the drills, and the tests touch
goes through these helpers — hand-built paths were how the original
resume drill and the supervisor could silently disagree about where a
ledger lives.  Layout::

    <dir>/service.json              identity manifest (master seed,
                                    scale, epochs, shard count, ...)
    <dir>/journal.jsonl             crash journal (epoch boundaries,
                                    retries, shutdowns, quarantines)
    <dir>/dataset.json              accumulated dataset, updated
                                    atomically at epoch boundaries only
    <dir>/dataset.availability.json SLO/availability artifact
    <dir>/dataset.manifest.json     provenance manifest (repro.obs)
    <dir>/epochs/epoch-0000/        one campaign checkpoint per epoch
    <dir>/quarantine/               damaged checkpoints, moved aside
"""

from __future__ import annotations

import glob
import os
from typing import List

from repro.obs.manifest import sidecar_path

__all__ = [
    "availability_path",
    "checkpoint_manifest_path",
    "dataset_path",
    "epoch_dir",
    "epoch_dirs",
    "epochs_root",
    "journal_path",
    "ledger_paths",
    "manifest_sidecar_path",
    "quarantine_root",
    "service_manifest_path",
]

SERVICE_MANIFEST_NAME = "service.json"
JOURNAL_NAME = "journal.jsonl"
DATASET_NAME = "dataset.json"
EPOCHS_DIRNAME = "epochs"
QUARANTINE_DIRNAME = "quarantine"


def service_manifest_path(directory: str) -> str:
    """``<dir>/service.json`` — the service identity manifest."""
    return os.path.join(directory, SERVICE_MANIFEST_NAME)


def journal_path(directory: str) -> str:
    """``<dir>/journal.jsonl`` — the crash journal."""
    return os.path.join(directory, JOURNAL_NAME)


def dataset_path(directory: str) -> str:
    """``<dir>/dataset.json`` — the accumulated longitudinal dataset."""
    return os.path.join(directory, DATASET_NAME)


def availability_path(directory: str) -> str:
    """``<dir>/dataset.availability.json`` — the SLO artifact."""
    return sidecar_path(dataset_path(directory), "availability")


def manifest_sidecar_path(directory: str) -> str:
    """``<dir>/dataset.manifest.json`` — the provenance manifest."""
    return sidecar_path(dataset_path(directory), "manifest")


def epochs_root(directory: str) -> str:
    """``<dir>/epochs/`` — parent of every epoch checkpoint."""
    return os.path.join(directory, EPOCHS_DIRNAME)


def epoch_dir(directory: str, epoch: int) -> str:
    """``<dir>/epochs/epoch-0007/`` — epoch *epoch*'s checkpoint."""
    if epoch < 0:
        raise ValueError("epoch must be >= 0")
    return os.path.join(
        epochs_root(directory), "epoch-{:04d}".format(epoch)
    )


def epoch_dirs(directory: str) -> List[str]:
    """Every existing epoch checkpoint directory, in epoch order."""
    root = epochs_root(directory)
    try:
        names = sorted(os.listdir(root))
    except FileNotFoundError:
        return []
    return [
        os.path.join(root, name)
        for name in names
        if name.startswith("epoch-")
        and os.path.isdir(os.path.join(root, name))
    ]


def quarantine_root(directory: str) -> str:
    """``<dir>/quarantine/`` — where damaged checkpoints are moved."""
    return os.path.join(directory, QUARANTINE_DIRNAME)


def ledger_paths(checkpoint_dir: str) -> List[str]:
    """Every sample ledger inside one campaign checkpoint directory."""
    return sorted(glob.glob(os.path.join(checkpoint_dir, "*.ledger")))


def checkpoint_manifest_path(checkpoint_dir: str) -> str:
    """``<ckpt>/checkpoint.json`` of one campaign checkpoint."""
    return os.path.join(checkpoint_dir, "checkpoint.json")

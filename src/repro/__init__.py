"""repro — a full reproduction of *Measuring DNS-over-HTTPS Performance
Around the World* (Chhabra et al., IMC 2021).

The paper measures the latency cost of switching from conventional DNS
(Do53) to DNS-over-HTTPS at four public providers, from 22,052
residential clients in 224 countries reached through the BrightData
proxy network.  This package rebuilds the entire measurement system on
a deterministic discrete-event Internet simulator and reproduces every
table and figure of the paper's evaluation.

Quickstart::

    from repro import ReproConfig, build_world, Campaign

    config = ReproConfig.small(scale=0.05)
    world = build_world(config)
    dataset = Campaign(world).run().dataset
    print(dataset.summary())

See :mod:`repro.core` for the measurement methodology, :mod:`repro.analysis`
for the paper's tables/figures, and DESIGN.md for the system inventory.
"""

from repro.core.campaign import Campaign, CampaignResult
from repro.core.config import ReproConfig
from repro.core.groundtruth import GroundTruthHarness
from repro.core.world import World, build_world
from repro.dataset.store import Dataset
from repro.obs import Observability
from repro.parallel import run_parallel_campaign

__version__ = "1.0.0"

__all__ = [
    "Campaign",
    "CampaignResult",
    "Dataset",
    "GroundTruthHarness",
    "Observability",
    "ReproConfig",
    "World",
    "build_world",
    "run_parallel_campaign",
    "__version__",
]

"""TLS handshake state machines over simulated TCP.

Handshakes exchange typed flight messages with realistic wire sizes:

* TLS 1.3 (RFC 8446): ClientHello → (ServerHello..Finished) → client
  Finished.  The client's Finished may ride with the first application
  record, so the handshake costs exactly **one** round trip before data
  flows — the property Equation 1 of the paper depends on.
* TLS 1.2 (RFC 5246): two full round trips before application data.
* Session-ticket resumption (TLS 1.3 PSK): the server flight shrinks
  (no certificate chain) and the client may attach 0-RTT early data.

Cryptographic computation is modelled as configurable processing time;
no actual cryptography is performed (the measurements are about
timing, not confidentiality).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.netsim.sockets import TcpConnection

__all__ = [
    "TlsError",
    "TlsVersion",
    "HandshakeResult",
    "client_handshake",
    "server_handshake",
    "CLIENT_HELLO_BYTES",
    "SERVER_FLIGHT_BYTES",
    "SERVER_FLIGHT_RESUMED_BYTES",
    "CLIENT_FINISHED_BYTES",
    "server_flight_bytes",
]


class TlsError(Exception):
    """Handshake failure (version mismatch, unexpected message...)."""


class TlsVersion:
    """Supported protocol versions."""

    TLS12 = "TLSv1.2"
    TLS13 = "TLSv1.3"

    ALL = (TLS12, TLS13)


# Realistic flight sizes (bytes on the wire, certificate chain included).
CLIENT_HELLO_BYTES = 330
SERVER_FLIGHT_BYTES = 2950  # ServerHello + cert chain + Finished
SERVER_FLIGHT_RESUMED_BYTES = 280  # PSK: no certificate chain
CLIENT_FINISHED_BYTES = 80
CLIENT_KEX_BYTES = 180  # TLS 1.2 ClientKeyExchange+CCS+Finished
SERVER_FINISHED_BYTES = 75  # TLS 1.2 CCS+Finished
TICKET_BYTES = 220

#: Server first-flight sizes, precomputed once per ``(version, resumed,
#: ticket issued)`` instead of being re-derived inside every simulated
#: handshake — a campaign performs one full handshake per (node,
#: provider, run) session.
_SERVER_FLIGHT_TABLE = {
    (version, resumed, with_ticket): (
        (SERVER_FLIGHT_RESUMED_BYTES if resumed else SERVER_FLIGHT_BYTES)
        + (TICKET_BYTES if with_ticket else 0)
    )
    for version in TlsVersion.ALL
    for resumed in (False, True)
    for with_ticket in (False, True)
}


def server_flight_bytes(version: str, resumed: bool, with_ticket: bool) -> int:
    """Size of the server's first flight for a given handshake shape.

    Exposed so session layers can precompute per-(provider, version)
    handshake budgets without running a simulated handshake.
    """
    return _SERVER_FLIGHT_TABLE[version, resumed, with_ticket]


@dataclass(frozen=True)
class _Flight:
    """One handshake flight on the wire."""

    kind: str
    version: str
    sni: str = ""
    ticket: Optional["object"] = None
    early_data: Any = None
    early_data_bytes: int = 0


@dataclass(frozen=True)
class HandshakeResult:
    """What a completed handshake established."""

    version: str
    resumed: bool
    handshake_ms: float
    #: Ticket issued by the server for later resumption (client side).
    ticket: Optional["object"] = None
    #: Early data carried by a resumed client (server side).
    early_data: Any = None


def client_handshake(
    conn: TcpConnection,
    sni: str,
    version: str = TlsVersion.TLS13,
    crypto_ms: float = 0.8,
    ticket: Optional["object"] = None,
    early_data: Any = None,
    early_data_bytes: int = 0,
):
    """Run the client side of a handshake; generator → HandshakeResult.

    With a *ticket*, attempts TLS 1.3 PSK resumption; *early_data* (if
    provided) rides the ClientHello as 0-RTT data.
    """
    if version not in TlsVersion.ALL:
        raise TlsError("unsupported version {!r}".format(version))
    if ticket is not None and version != TlsVersion.TLS13:
        raise TlsError("session tickets require TLS 1.3")
    sim = conn.host.network.sim
    started = sim.now

    hello = _Flight(
        kind="client_hello",
        version=version,
        sni=sni,
        ticket=ticket,
        early_data=early_data,
        early_data_bytes=early_data_bytes,
    )
    conn.send(hello, CLIENT_HELLO_BYTES + early_data_bytes)

    flight = yield conn.recv()
    if not isinstance(flight, _Flight) or flight.kind != "server_flight":
        raise TlsError("expected server flight, got {!r}".format(flight))
    if flight.version != version:
        raise TlsError(
            "version mismatch: offered {}, server chose {}".format(
                version, flight.version
            )
        )
    if crypto_ms > 0:
        yield conn.host.busy(crypto_ms)

    if version == TlsVersion.TLS12:
        # Second round trip: ClientKeyExchange/Finished → server Finished.
        conn.send(_Flight(kind="client_kex", version=version), CLIENT_KEX_BYTES)
        finished = yield conn.recv()
        if not isinstance(finished, _Flight) or finished.kind != "server_finished":
            raise TlsError("expected server Finished")
        return HandshakeResult(
            version=version,
            resumed=False,
            handshake_ms=sim.now - started,
            ticket=flight.ticket,
        )

    # TLS 1.3: handshake complete; client Finished rides the next
    # application record (the session layer accounts its bytes there).
    return HandshakeResult(
        version=version,
        resumed=ticket is not None,
        handshake_ms=sim.now - started,
        ticket=flight.ticket,
    )


def server_handshake(
    conn: TcpConnection,
    crypto_ms: float = 1.2,
    issue_ticket: bool = True,
    supported_versions: Tuple[str, ...] = TlsVersion.ALL,
):
    """Run the server side of a handshake; generator → HandshakeResult."""
    sim = conn.host.network.sim
    started = sim.now
    hello = yield conn.recv()
    if not isinstance(hello, _Flight) or hello.kind != "client_hello":
        raise TlsError("expected ClientHello, got {!r}".format(hello))
    if hello.version not in supported_versions:
        raise TlsError("client offered unsupported {}".format(hello.version))
    if crypto_ms > 0:
        yield conn.host.busy(crypto_ms)

    resumed = hello.ticket is not None and hello.version == TlsVersion.TLS13
    ticket = _SessionTicketToken(sni=hello.sni) if issue_ticket else None
    flight_bytes = _SERVER_FLIGHT_TABLE[hello.version, resumed, ticket is not None]
    conn.send(
        _Flight(kind="server_flight", version=hello.version, ticket=ticket),
        flight_bytes,
    )

    if hello.version == TlsVersion.TLS12:
        kex = yield conn.recv()
        if not isinstance(kex, _Flight) or kex.kind != "client_kex":
            raise TlsError("expected ClientKeyExchange")
        conn.send(
            _Flight(kind="server_finished", version=hello.version),
            SERVER_FINISHED_BYTES,
        )

    return HandshakeResult(
        version=hello.version,
        resumed=resumed,
        handshake_ms=sim.now - started,
        ticket=ticket,
        early_data=hello.early_data if resumed else None,
    )


@dataclass(frozen=True)
class _SessionTicketToken:
    """Opaque resumption token issued by a server."""

    sni: str

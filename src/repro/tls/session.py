"""Established TLS sessions: record framing over TCP.

A :class:`TlsConnection` wraps an established :class:`TcpConnection`
after a handshake and exposes the same ``send``/``recv``/``close``
surface, adding per-record overhead bytes.  The first client record
also carries the TLS 1.3 Finished (steps 15–17 of the paper's
timeline), which is why it is slightly larger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.netsim.engine import Event
from repro.netsim.sockets import TcpConnection
from repro.tls.handshake import (
    CLIENT_FINISHED_BYTES,
    HandshakeResult,
    TlsVersion,
)

__all__ = ["TlsConnection", "TlsSessionTicket"]

#: Per-record framing + AEAD tag overhead, bytes.
RECORD_OVERHEAD_BYTES = 29

#: Public alias for the opaque resumption token.
TlsSessionTicket = object


class TlsConnection:
    """An established TLS session over a TCP connection."""

    def __init__(
        self,
        conn: TcpConnection,
        result: HandshakeResult,
        is_client: bool,
    ) -> None:
        self.conn = conn
        self.result = result
        self.is_client = is_client
        self._pending_finished = (
            is_client and result.version == TlsVersion.TLS13
        )

    # -- properties -------------------------------------------------------

    @property
    def host(self):
        return self.conn.host

    @property
    def version(self) -> str:
        return self.result.version

    @property
    def handshake_ms(self) -> float:
        return self.result.handshake_ms

    @property
    def ticket(self) -> Optional[TlsSessionTicket]:
        return self.result.ticket

    @property
    def closed(self) -> bool:
        return self.conn.closed

    # -- data path --------------------------------------------------------

    def send(self, payload: Any, nbytes: int) -> None:
        """Send one application record (framing overhead added)."""
        total = nbytes + RECORD_OVERHEAD_BYTES
        if self._pending_finished:
            # TLS 1.3: client Finished coalesces with the first record.
            total += CLIENT_FINISHED_BYTES
            self._pending_finished = False
        self.conn.send(payload, total)

    def recv(self, timeout_ms: Optional[float] = None) -> Event:
        """Event yielding the next application record payload."""
        return self.conn.recv(timeout_ms=timeout_ms)

    def close(self) -> None:
        """Close the underlying TCP connection."""
        self.conn.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<TlsConnection {} over {!r}>".format(self.version, self.conn)

"""TLS substrate: handshake timing and record framing.

The paper's DoH timeline (Figure 2) hinges on TLS 1.3's one-round-trip
handshake — steps 9–14 — and on the client sending its Finished with
the first HTTP request (steps 15–17).  This package models exactly
those dynamics over the simulated TCP layer: handshake flights are real
messages with realistic sizes, TLS 1.2 costs an extra round trip, and
session-ticket resumption is available as an extension.
"""

from repro.tls.handshake import (
    TlsError,
    TlsVersion,
    client_handshake,
    server_handshake,
)
from repro.tls.session import TlsConnection, TlsSessionTicket

__all__ = [
    "TlsConnection",
    "TlsError",
    "TlsSessionTicket",
    "TlsVersion",
    "client_handshake",
    "server_handshake",
]

"""Snapshot and restore of all mutable simulation state.

Why this exists: the whole world shares **one** sequential
``random.Random`` stream (network jitter, proxy box times, resolver
choices, churn...), so a resumed campaign cannot simply "skip" work it
already measured — every skipped draw would shift every later draw.
Instead, checkpoints are taken at **batch boundaries**, where the
event heap is drained, and capture the complete mutable state of the
world; resume rebuilds the world from the config (cheap and
deterministic, see :mod:`repro.core.plan`) and then restores that
state, after which the continuation replays the exact draw sequence
the uninterrupted run would have made.

A world cannot be pickled whole — server processes are suspended
generator frames — but its *mutable state* is plain data: RNG state
tuples, counters, cache entries, and log lists.  The inventory below
is exhaustive by audit; anything not listed is either immutable after
build (zones, topology, routing tables), empty at a drained batch
boundary (event heap, flow bookkeeping, port tables for ephemeral
sockets), or a pure memo whose content never influences behaviour or
scraped metrics (latency base cache, anycast assignment memo).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.world import World

__all__ = ["capture_world_state", "restore_world_state"]

STATE_VERSION = 1


def _resolvers(world: World):
    """Every recursive resolver in deterministic build order."""
    for code in world.population.infrastructure:
        infra = world.population.infrastructure[code]
        for resolver in infra.all_resolvers():
            yield resolver
    for name in world.providers:
        for pop in world.providers[name].pops:
            yield pop.resolver
    for proxy in world.super_proxies:
        if proxy.resolver is not None:
            yield proxy.resolver


def _auth_servers(world: World):
    """Every authoritative server in deterministic build order."""
    yield world.auth_server
    for server in world.root_servers:
        yield server
    for server in world.tld_servers:
        yield server


def _capture_resolver(resolver) -> Dict:
    cache = resolver.cache
    stats = resolver.stats
    return {
        "cache_entries": dict(cache._entries),
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "client_queries": stats.client_queries,
        "upstream_queries": stats.upstream_queries,
        "servfails": stats.servfails,
        "timeouts": stats.timeouts,
    }


def _restore_resolver(resolver, state: Dict) -> None:
    cache = resolver.cache
    cache._entries.clear()
    cache._entries.update(state["cache_entries"])
    cache.hits = state["cache_hits"]
    cache.misses = state["cache_misses"]
    stats = resolver.stats
    stats.client_queries = state["client_queries"]
    stats.upstream_queries = state["upstream_queries"]
    stats.servfails = state["servfails"]
    stats.timeouts = state["timeouts"]


def capture_world_state(world: World) -> Dict:
    """Capture all mutable world state as a picklable plain dict.

    Must be called at a batch boundary: the event heap drained and all
    per-measurement sockets closed (exactly the state
    ``Campaign.measure`` reaches between batches).
    """
    sim = world.sim
    if sim._heap:
        raise RuntimeError(
            "world state can only be captured at a drained batch "
            "boundary ({} events still scheduled)".format(len(sim._heap))
        )
    state: Dict = {
        "version": STATE_VERSION,
        "sim": {
            "now": sim.now,
            "seq": sim._seq,
            "events_scheduled": sim.events_scheduled,
            "events_executed": sim.events_executed,
        },
        "world_rng": world.rng.getstate(),
        "ephemeral_ports": {
            ip: host._next_ephemeral
            for ip, host in world.network._hosts.items()
        },
        "resolvers": [
            _capture_resolver(resolver) for resolver in _resolvers(world)
        ],
        "auth_servers": [
            {
                "query_log": list(server.query_log),
                "queries_served": server.queries_served,
                "truncated_responses": server.truncated_responses,
            }
            for server in _auth_servers(world)
        ],
        "exit_nodes": [
            (node._serves, node.tunnels_served, node.fetches_served)
            for node in world.nodes()
        ],
        "super_proxies": [
            (proxy.tunnels_served, proxy.fetches_served)
            for proxy in world.super_proxies
        ],
        "pop_queries": [
            [pop.queries_served for pop in world.providers[name].pops]
            for name in world.providers
        ],
        "sessions": dict(world.proxy_network._sessions),
        "allocator": {
            "country_index": dict(world.allocator._country_index),
            "next_subnet": dict(world.allocator._next_subnet),
            "next_host": dict(world.allocator._next_host),
            "owner_by_subnet": dict(world.allocator._owner_by_subnet),
        },
    }
    injector = world.fault_injector
    if injector is not None:
        state["faults"] = {
            "activations": dict(injector.activations),
            "overload_counts": dict(injector._overload_counts),
        }
    burst = world.network.burst_loss
    if burst is not None:
        state["burst_loss"] = {
            "rng": burst.rng.getstate(),
            "bad": burst.bad,
            "losses": burst.losses,
        }
    return state


def restore_world_state(world: World, state: Dict) -> None:
    """Restore a freshly built world to a captured state.

    The world must have been built from the same config (enforced one
    level up by the campaign fingerprint); after this call the world is
    indistinguishable from the one that captured the state.
    """
    if state.get("version") != STATE_VERSION:
        raise ValueError(
            "unsupported world state version {!r}".format(
                state.get("version"))
        )
    sim = world.sim
    if sim._heap:
        # A freshly built world still has its boot events queued (the
        # t=0 process-start callbacks that launch every server loop).
        # The original run consumed them inside its first batch; drain
        # them now, before the clock jumps forward, or they would pop
        # with a timestamp in the restored past.  Any state they touch
        # is overwritten by the restore below, exactly as the captured
        # run overwrote it.
        sim.run()
    sim.now = state["sim"]["now"]
    sim._seq = state["sim"]["seq"]
    sim.events_scheduled = state["sim"]["events_scheduled"]
    sim.events_executed = state["sim"]["events_executed"]
    world.rng.setstate(_rng_state(state["world_rng"]))

    hosts = world.network._hosts
    for ip, next_port in state["ephemeral_ports"].items():
        hosts[ip]._next_ephemeral = next_port

    resolvers = list(_resolvers(world))
    _match(len(resolvers), len(state["resolvers"]), "resolvers")
    for resolver, saved in zip(resolvers, state["resolvers"]):
        _restore_resolver(resolver, saved)

    auth_servers = list(_auth_servers(world))
    _match(len(auth_servers), len(state["auth_servers"]), "auth servers")
    for server, saved in zip(auth_servers, state["auth_servers"]):
        server.query_log[:] = saved["query_log"]
        server.queries_served = saved["queries_served"]
        server.truncated_responses = saved["truncated_responses"]

    nodes = world.nodes()
    _match(len(nodes), len(state["exit_nodes"]), "exit nodes")
    for node, (serves, tunnels, fetches) in zip(nodes, state["exit_nodes"]):
        node._serves = serves
        node.tunnels_served = tunnels
        node.fetches_served = fetches

    _match(len(world.super_proxies), len(state["super_proxies"]),
           "super proxies")
    for proxy, (tunnels, fetches) in zip(
        world.super_proxies, state["super_proxies"]
    ):
        proxy.tunnels_served = tunnels
        proxy.fetches_served = fetches

    providers: List = [world.providers[name] for name in world.providers]
    _match(len(providers), len(state["pop_queries"]), "providers")
    for provider, counts in zip(providers, state["pop_queries"]):
        _match(len(provider.pops), len(counts), "provider PoPs")
        for pop, served in zip(provider.pops, counts):
            pop.queries_served = served

    world.proxy_network._sessions.clear()
    world.proxy_network._sessions.update(state["sessions"])

    allocator = world.allocator
    saved = state["allocator"]
    allocator._country_index.clear()
    allocator._country_index.update(saved["country_index"])
    allocator._next_subnet.clear()
    allocator._next_subnet.update(saved["next_subnet"])
    allocator._next_host.clear()
    allocator._next_host.update(saved["next_host"])
    allocator._owner_by_subnet.clear()
    allocator._owner_by_subnet.update(saved["owner_by_subnet"])

    injector = world.fault_injector
    if "faults" in state:
        if injector is None:
            raise ValueError(
                "state captured with fault injection, world built without"
            )
        injector.activations.clear()
        injector.activations.update(state["faults"]["activations"])
        injector._overload_counts.clear()
        injector._overload_counts.update(state["faults"]["overload_counts"])
    elif injector is not None:
        raise ValueError(
            "state captured without fault injection, world built with"
        )
    burst = world.network.burst_loss
    if "burst_loss" in state:
        if burst is None:
            raise ValueError(
                "state captured with burst loss, world built without"
            )
        burst.rng.setstate(_rng_state(state["burst_loss"]["rng"]))
        burst.bad = state["burst_loss"]["bad"]
        burst.losses = state["burst_loss"]["losses"]


def _rng_state(saved):
    """Normalise a ``Random.getstate()`` tuple after a pickle round
    trip (the inner state must be a tuple, not a list)."""
    kind, internal, gauss = saved
    return (kind, tuple(internal), gauss)


def _match(actual: int, expected: int, what: str) -> None:
    if actual != expected:
        raise ValueError(
            "world shape mismatch while restoring state: {} {} in the "
            "rebuilt world, {} in the snapshot (was the checkpoint "
            "taken with a different config?)".format(actual, what, expected)
        )

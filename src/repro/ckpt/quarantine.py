"""Checkpoint health classification and quarantine.

A long-running service cannot treat every damaged checkpoint the same
way.  The ledger format distinguishes two failure modes
(:mod:`repro.ckpt.ledger`), and the service acts on the distinction:

* **torn tail** — the final record is partial or fails its checksum:
  the signature of a crash mid-append.  Safe to resume; the reader
  truncates back to the clean prefix and at most one batch interval of
  work is re-measured.
* **mid-file corruption** — a record *before* the end fails
  verification: the file was damaged at rest (bad disk, truncation by
  an outside tool, manual editing).  Resuming would silently splice a
  hole into the dataset, so the service **quarantines** the checkpoint:
  the whole directory is moved aside — original bytes preserved, never
  overwritten — and the run stops with a distinct exit code.

:func:`verify_checkpoint_dir` performs the classification;
:func:`quarantine_checkpoint` performs the move.  ``repro ckpt
verify`` maps the classification onto distinct process exit codes so
shell scripts and CI can branch on "safe to resume" vs "quarantine"
(see docs/checkpointing.md).
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field
from typing import List, Optional

from repro.ckpt.checkpoint import CampaignCheckpoint, load_unit_result
from repro.ckpt.ledger import CheckpointCorruptionError, read_ledger

__all__ = [
    "CheckpointHealth",
    "QUARANTINE_DIRNAME",
    "VERIFY_CLEAN",
    "VERIFY_CORRUPT",
    "VERIFY_STALE",
    "VERIFY_TORN",
    "quarantine_checkpoint",
    "verify_checkpoint_dir",
]

#: Name of the holding area for quarantined checkpoints.
QUARANTINE_DIRNAME = "quarantine"

#: ``repro ckpt verify`` exit codes (documented contract; the service
#: and CI branch on them).  Higher codes are strictly worse.
VERIFY_CLEAN = 0     # every ledger checksums clean end to end
VERIFY_STALE = 1     # structural problems (fingerprint drift, stale blobs)
VERIFY_TORN = 2      # a crash-torn tail only: safe to resume
VERIFY_CORRUPT = 3   # mid-file corruption: quarantine, never resume


@dataclass
class CheckpointHealth:
    """Classification of one checkpoint directory."""

    directory: str
    #: One of "clean", "stale", "torn", "corrupt", strictly worsening.
    status: str = "clean"
    #: Human-readable findings, one per inspected file.
    notes: List[str] = field(default_factory=list)
    #: Findings that made the status non-clean.
    problems: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return {
            "clean": VERIFY_CLEAN,
            "stale": VERIFY_STALE,
            "torn": VERIFY_TORN,
            "corrupt": VERIFY_CORRUPT,
        }[self.status]

    @property
    def resumable(self) -> bool:
        """Whether ``--resume auto`` is safe (never after corruption)."""
        return self.status in ("clean", "torn")

    def _worsen(self, status: str) -> None:
        order = ("clean", "stale", "torn", "corrupt")
        if order.index(status) > order.index(self.status):
            self.status = status


def verify_checkpoint_dir(directory: str) -> CheckpointHealth:
    """Checksum-verify every ledger and result blob under *directory*.

    Classifies the checkpoint for the resume-vs-quarantine decision;
    never modifies anything.  Nested extension checkpoints are not
    descended into (verify them separately).
    """
    health = CheckpointHealth(directory=directory)
    checkpoint = CampaignCheckpoint.load(directory)  # raises if no manifest
    for name in sorted(os.listdir(directory)):
        path = os.path.join(directory, name)
        if name.endswith(".ledger"):
            try:
                load = read_ledger(path)
            except CheckpointCorruptionError as exc:
                health._worsen("corrupt")
                health.problems.append("{}: {}".format(name, exc))
                continue
            header = load.header.payload if load.header else {}
            if load.records and (
                header.get("fingerprint") != checkpoint.fingerprint
            ):
                health._worsen("stale")
                health.problems.append(
                    "{}: fingerprint {} does not match the manifest's "
                    "{}".format(name, header.get("fingerprint"),
                                checkpoint.fingerprint))
                continue
            batches = sum(
                1 for record in load.records if record.kind == "batch")
            done = any(record.kind == "done" for record in load.records)
            if load.dropped_tail:
                health._worsen("torn")
                health.problems.append(
                    "{}: torn tail record dropped (crash mid-append; "
                    "safe to resume)".format(name))
            health.notes.append("{}: {} batch record(s), {}".format(
                name, batches, "complete" if done else "in progress"))
        elif name.endswith(".result"):
            role = name[: -len(".result")]
            if load_unit_result(
                path, checkpoint.fingerprint, role
            ) is None:
                health._worsen("stale")
                health.problems.append(
                    "{}: unreadable or stale result blob".format(name))
            else:
                health.notes.append("{}: result blob ok".format(name))
    return health


def quarantine_checkpoint(
    directory: str, quarantine_root: str, reason: str = ""
) -> str:
    """Move the checkpoint at *directory* into *quarantine_root*.

    The original bytes are preserved exactly — the directory is renamed
    (or copied across filesystems by :func:`shutil.move`), never
    merged: if the destination name is taken, a numeric suffix is
    appended until a fresh one is found.  A ``QUARANTINE.txt`` note
    recording *reason* is dropped inside.  Returns the destination.
    """
    os.makedirs(quarantine_root, exist_ok=True)
    base = os.path.basename(os.path.normpath(directory))
    destination = os.path.join(quarantine_root, base)
    suffix = 0
    while os.path.exists(destination):
        suffix += 1
        destination = os.path.join(
            quarantine_root, "{}-{}".format(base, suffix)
        )
    shutil.move(directory, destination)
    note = os.path.join(destination, "QUARANTINE.txt")
    try:
        with open(note, "w") as handle:
            handle.write(
                "quarantined checkpoint (moved from {!r})\n"
                "reason: {}\n"
                "Restore the original files to resume; nothing here is "
                "deleted automatically.\n".format(directory, reason)
            )
    except OSError:
        pass  # the move itself is the safety property; the note is aid
    return destination


def latest_quarantine_entry(quarantine_root: str) -> Optional[str]:
    """The most recently created entry under *quarantine_root*."""
    try:
        names = os.listdir(quarantine_root)
    except FileNotFoundError:
        return None
    if not names:
        return None
    paths = [os.path.join(quarantine_root, name) for name in sorted(names)]
    return max(paths, key=lambda p: os.path.getmtime(p))

"""The append-only, checksummed sample journal.

One ledger file per unit of resumable work (the serial campaign, each
measurement shard, the Atlas task).  The format is JSON Lines; every
line is one record::

    {"k": <kind>, "n": <seq>, "p": <payload>, "c": <checksum>}

* ``k`` — record kind (``header``, ``batch``, ``done``),
* ``n`` — sequence number, contiguous from 0 (the header),
* ``p`` — the payload (for ``batch``: the serialised raw samples),
* ``c`` — BLAKE2b digest over the canonical JSON of ``[k, n, p]``.

Appends are flushed and fsync'd before the writer reports the batch
committed, so a journal is always a prefix of what the campaign
measured.  Readers verify checksums and sequence contiguity:

* a corrupt or partial **final** record is a torn write from a crash —
  it is dropped and the file truncated back to the clean prefix,
* corruption **before** the final record means the file was damaged at
  rest — that raises :class:`CheckpointCorruptionError` instead of
  silently losing samples in the middle of a campaign.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, List, Optional

__all__ = ["LedgerReader", "LedgerRecord", "LedgerWriter", "read_ledger"]


class CheckpointCorruptionError(Exception):
    """A ledger failed checksum or structural verification."""


def _canonical(kind: str, seq: int, payload: Any) -> bytes:
    return json.dumps(
        [kind, seq, payload], sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _checksum(kind: str, seq: int, payload: Any) -> str:
    return hashlib.blake2b(
        _canonical(kind, seq, payload), digest_size=8
    ).hexdigest()


@dataclass(frozen=True)
class LedgerRecord:
    """One verified journal record."""

    kind: str
    seq: int
    payload: Any


@dataclass
class LedgerLoad:
    """The verified contents of one ledger file."""

    records: List[LedgerRecord]
    #: Byte length of the verified prefix (everything past it is torn).
    clean_bytes: int
    #: True when a torn/corrupt tail record was dropped during load.
    dropped_tail: bool
    #: End byte offset of each verified record (for prefix truncation).
    offsets: List[int]

    @property
    def header(self) -> Optional[LedgerRecord]:
        if self.records and self.records[0].kind == "header":
            return self.records[0]
        return None


class LedgerWriter:
    """Appends checksummed records, fsync'ing each commit."""

    def __init__(self, path: str, next_seq: int = 0) -> None:
        self.path = path
        self._seq = next_seq
        self._handle = open(path, "ab")

    def append(self, kind: str, payload: Any, fsync: bool = True) -> int:
        """Append one record; returns its sequence number."""
        seq = self._seq
        line = json.dumps(
            {
                "k": kind,
                "n": seq,
                "p": payload,
                "c": _checksum(kind, seq, payload),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        self._handle.write(line.encode("utf-8") + b"\n")
        self._handle.flush()
        if fsync:
            os.fsync(self._handle.fileno())
        self._seq = seq + 1
        return seq

    def close(self) -> None:
        """Close the journal file handle (safe to call twice)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "LedgerWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_ledger(path: str) -> Optional[LedgerLoad]:
    """Load and verify a ledger; ``None`` when *path* does not exist.

    Only the final record may be torn (dropped silently — that is the
    crash the journal exists to survive); damage anywhere else raises
    :class:`CheckpointCorruptionError`.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except FileNotFoundError:
        return None

    records: List[LedgerRecord] = []
    offsets: List[int] = []
    clean_bytes = 0
    dropped_tail = False
    offset = 0
    lines = blob.split(b"\n")
    # A well-formed file ends with a newline, so the final split piece
    # is empty; anything else is a partially-written last line.
    for index, line in enumerate(lines):
        if not line:
            offset += 1
            continue
        at_end = not any(lines[index + 1:])
        error = None
        try:
            data = json.loads(line.decode("utf-8"))
            kind = data["k"]
            seq = data["n"]
            payload = data["p"]
            if data["c"] != _checksum(kind, seq, payload):
                error = "checksum mismatch"
            elif seq != len(records):
                error = "sequence gap (expected {}, found {})".format(
                    len(records), seq
                )
            elif seq == 0 and kind != "header":
                error = "first record is {!r}, not a header".format(kind)
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            error = "unparsable record ({})".format(exc)
        if error is not None:
            if at_end:
                dropped_tail = True
                break
            raise CheckpointCorruptionError(
                "{}: record {} is corrupt before the end of the journal: "
                "{}".format(path, len(records), error)
            )
        records.append(LedgerRecord(kind=kind, seq=seq, payload=payload))
        offset += len(line) + 1
        clean_bytes = offset
        offsets.append(offset)
    return LedgerLoad(
        records=records,
        clean_bytes=clean_bytes,
        dropped_tail=dropped_tail,
        offsets=offsets,
    )


class LedgerReader:
    """Convenience wrapper pairing :func:`read_ledger` with truncation."""

    @staticmethod
    def load(path: str) -> Optional[LedgerLoad]:
        """Alias for :func:`read_ledger`."""
        return read_ledger(path)

    @staticmethod
    def truncate_to(path: str, clean_bytes: int) -> None:
        """Drop a torn tail so the next writer appends after the clean
        prefix."""
        with open(path, "ab") as handle:
            handle.truncate(clean_bytes)
            handle.flush()
            os.fsync(handle.fileno())

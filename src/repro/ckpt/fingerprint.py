"""Campaign fingerprinting: what makes a ledger resumable.

A checkpoint may only ever be resumed by a campaign that would have
produced byte-identical results from scratch.  The fingerprint hashes
every code-relevant input:

* the full :class:`~repro.core.config.ReproConfig` ``repr`` — world
  seed, population scale, latency parameters, provider set, TLS
  version, runs per client, batch size, and the complete fault plan
  (fault seed included),
* the derived :class:`~repro.core.plan.WorldPlan` — so drift in the
  plan-fitting code itself (which would build a different fleet from
  the same config) also invalidates old ledgers,
* the execution shape — serial vs sharded, shard count, node cap,
  client-stream seeds/name tags, Atlas parameters — because those
  choose which RNG streams measure which node.

Two campaigns share a fingerprint exactly when their uninterrupted
datasets would be identical; anything else raises
:class:`~repro.ckpt.checkpoint.CheckpointMismatchError` at resume.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional

from repro.core.plan import WorldPlan

__all__ = ["campaign_fingerprint"]

#: Bump when the ledger/state format changes incompatibly.
FORMAT_VERSION = 1


def campaign_fingerprint(config, execution: Optional[Dict] = None) -> str:
    """Stable hex digest identifying one resumable campaign.

    *execution* is a plain JSON-able dict describing the execution
    shape (mode, shard count, Atlas parameters...); ``None`` means the
    bare serial campaign with defaults.
    """
    plan = WorldPlan.for_config(config)
    material = "\n".join(
        [
            "format:{}".format(FORMAT_VERSION),
            "config:{!r}".format(config),
            "plan:{!r}".format(plan),
            "execution:{}".format(
                json.dumps(execution or {}, sort_keys=True,
                           separators=(",", ":"))
            ),
        ]
    )
    return hashlib.blake2b(
        material.encode("utf-8"), digest_size=20
    ).hexdigest()

"""Checkpointed, resumable, and incremental campaigns.

The paper's dataset took weeks of paid measurements; a crash must not
discard completed work.  This package provides:

* :mod:`repro.ckpt.ledger` — an append-only, checksummed sample
  journal (one file per shard) with fsync'd record batches and
  truncated-tail recovery,
* :mod:`repro.ckpt.worldstate` — snapshot/restore of every piece of
  mutable simulation state, the mechanism behind the byte-identity
  guarantee (resumed runs equal uninterrupted runs, bit for bit),
* :mod:`repro.ckpt.fingerprint` — a campaign fingerprint hashing the
  config, world plan, fault plan, and client seeds, so a ledger can
  never silently be resumed against different code-relevant inputs,
* :mod:`repro.ckpt.checkpoint` — the :class:`CampaignCheckpoint`
  directory layout, manifest, and resume bookkeeping,
* :mod:`repro.ckpt.extend` — incremental campaigns: grow a finished
  checkpoint with new providers, more runs, or more nodes, computing
  only the delta and merging deterministically,
* :mod:`repro.ckpt.quarantine` — checkpoint health classification
  (clean / stale / torn / corrupt, with distinct ``ckpt verify`` exit
  codes) and the quarantine move used by the longitudinal service:
  damaged checkpoints are set aside with their bytes intact, never
  overwritten.

See docs/checkpointing.md for the format and guarantees.
"""

from repro.ckpt.checkpoint import (
    CampaignCheckpoint,
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointMismatchError,
    MeasureCheckpoint,
)
from repro.ckpt.extend import ExtendResult, extend_campaign, plan_extension
from repro.ckpt.fingerprint import campaign_fingerprint
from repro.ckpt.ledger import LedgerReader, LedgerWriter
from repro.ckpt.quarantine import (
    VERIFY_CLEAN,
    VERIFY_CORRUPT,
    VERIFY_STALE,
    VERIFY_TORN,
    CheckpointHealth,
    latest_quarantine_entry,
    quarantine_checkpoint,
    verify_checkpoint_dir,
)

__all__ = [
    "CampaignCheckpoint",
    "CheckpointCorruptionError",
    "CheckpointError",
    "CheckpointHealth",
    "CheckpointMismatchError",
    "ExtendResult",
    "LedgerReader",
    "LedgerWriter",
    "MeasureCheckpoint",
    "VERIFY_CLEAN",
    "VERIFY_CORRUPT",
    "VERIFY_STALE",
    "VERIFY_TORN",
    "campaign_fingerprint",
    "extend_campaign",
    "latest_quarantine_entry",
    "plan_extension",
    "quarantine_checkpoint",
    "verify_checkpoint_dir",
]

"""Checkpoint directories, manifests, and the resume protocol.

Layout of a checkpoint directory::

    <dir>/checkpoint.json     manifest: fingerprint, execution shape,
                              per-run resume counters, lineage
    <dir>/config.pkl          the exact ReproConfig (for ckpt extend)
    <dir>/<role>.ledger       sample journal per unit of work
                              (roles: "serial", "shard-<k>", "ext-...")
    <dir>/<role>.state        pickled world+campaign mutable state at
                              the last committed batch boundary
    <dir>/<role>.result       pickled final unit result (shards/Atlas)
    <dir>/ext-<n>/            nested checkpoint of extension n

Commit protocol per batch: append the batch's raw samples to the
ledger (fsync), then atomically replace the state blob.  A crash
between the two leaves the ledger one batch ahead of the state; resume
reconciles by truncating the ledger back to the state's watermark — at
most one batch interval of work is re-measured, and re-measuring is
always byte-safe because the restored state replays the exact RNG draw
sequence of an uninterrupted run (see :mod:`repro.ckpt.worldstate`).
"""

from __future__ import annotations

import json
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ckpt import records as codecs
from repro.ckpt.fingerprint import FORMAT_VERSION, campaign_fingerprint
from repro.ckpt.ledger import (
    CheckpointCorruptionError,
    LedgerReader,
    LedgerWriter,
    read_ledger,
)
from repro.ckpt.worldstate import capture_world_state, restore_world_state
from repro.core.campaign import NodeFailure
from repro.core.timeline import Do53Raw, DohRaw
from repro.faults.plan import WORKER_CRASH_EXIT  # noqa: F401  (re-export)
from repro.ioutil import atomic_write_bytes, atomic_write_json

__all__ = [
    "CampaignCheckpoint",
    "CheckpointCorruptionError",
    "CheckpointError",
    "CheckpointMismatchError",
    "MeasureCheckpoint",
    "ResumeInfo",
]

MANIFEST_NAME = "checkpoint.json"
CONFIG_NAME = "config.pkl"


class CheckpointError(Exception):
    """Base class for checkpoint/resume failures."""


class CheckpointMismatchError(CheckpointError):
    """A ledger was written by a different campaign definition.

    Raised when the stored fingerprint disagrees with the one computed
    from the config/plan/execution being run.  Resuming would splice
    samples from two different experiments; pass ``resume="force"``
    (CLI: ``--resume=force``) to discard the old ledger instead.
    """


@dataclass
class ResumeInfo:
    """What a :class:`MeasureCheckpoint` replayed from its ledger."""

    batches_done: int = 0
    complete: bool = False
    doh: List[DohRaw] = field(default_factory=list)
    do53: List[Do53Raw] = field(default_factory=list)
    failures: List[NodeFailure] = field(default_factory=list)

    @property
    def samples_replayed(self) -> int:
        return len(self.doh) + len(self.do53)


class CampaignCheckpoint:
    """One checkpoint directory and its manifest."""

    VERSION = 1

    def __init__(self, directory: str, fingerprint: str,
                 manifest: Dict) -> None:
        self.directory = directory
        self.fingerprint = fingerprint
        self.manifest = manifest

    # -- creation / adoption ---------------------------------------------

    @classmethod
    def open(
        cls,
        directory: str,
        config,
        execution: Optional[Dict] = None,
        resume: str = "never",
    ) -> "CampaignCheckpoint":
        """Create or adopt the checkpoint at *directory*.

        *resume* is the CLI contract:

        * ``"never"`` (default) — a fresh campaign; an existing
          manifest raises :class:`CheckpointError` so two runs can
          never interleave by accident,
        * ``"auto"`` — resume an existing checkpoint (fingerprint must
          match, else :class:`CheckpointMismatchError`); absent one,
          start fresh,
        * ``"force"`` — discard whatever exists and start fresh.
        """
        if resume not in ("never", "auto", "force"):
            raise ValueError("resume must be 'never', 'auto' or 'force'")
        fingerprint = campaign_fingerprint(config, execution)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        existing = cls._read_manifest(manifest_path)

        if existing is not None and resume == "never":
            raise CheckpointError(
                "checkpoint directory {!r} already holds a campaign "
                "(fingerprint {}); pass --resume to continue it or "
                "--resume=force to discard it".format(
                    directory, existing.get("fingerprint", "?")
                )
            )
        if existing is not None and resume == "force":
            cls._wipe(directory)
            existing = None
        if existing is not None:
            stored = existing.get("fingerprint")
            if stored != fingerprint:
                raise CheckpointMismatchError(
                    "cannot resume checkpoint {!r}: it was written for a "
                    "different campaign (stored fingerprint {}, this "
                    "campaign {}). The config, world plan, fault plan, "
                    "seeds, and execution shape must all match; pass "
                    "--resume=force to discard the old ledger.".format(
                        directory, stored, fingerprint
                    )
                )
            return cls(directory, fingerprint, existing)

        os.makedirs(directory, exist_ok=True)
        manifest = {
            "version": cls.VERSION,
            "format": FORMAT_VERSION,
            "fingerprint": fingerprint,
            "execution": execution or {},
            "status": "in-progress",
            "created_unix": int(time.time()),
            "runs": [],
            "lineage": [],
        }
        checkpoint = cls(directory, fingerprint, manifest)
        atomic_write_bytes(
            os.path.join(directory, CONFIG_NAME),
            pickle.dumps(config, protocol=pickle.HIGHEST_PROTOCOL),
        )
        checkpoint._write_manifest()
        return checkpoint

    @classmethod
    def load(cls, directory: str) -> "CampaignCheckpoint":
        """Adopt an existing checkpoint without fingerprint checking
        (inspection commands: status/verify/gc/extend)."""
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        manifest = cls._read_manifest(manifest_path)
        if manifest is None:
            raise CheckpointError(
                "no checkpoint manifest at {!r}".format(manifest_path)
            )
        return cls(directory, manifest.get("fingerprint", ""), manifest)

    def stored_config(self):
        """The exact config the checkpoint was created with."""
        with open(os.path.join(self.directory, CONFIG_NAME), "rb") as handle:
            return pickle.load(handle)

    @staticmethod
    def _read_manifest(path: str) -> Optional[Dict]:
        try:
            with open(path) as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except ValueError as exc:
            raise CheckpointCorruptionError(
                "unreadable checkpoint manifest {!r}: {}".format(path, exc)
            )

    @staticmethod
    def _wipe(directory: str) -> None:
        for name in sorted(os.listdir(directory)):
            path = os.path.join(directory, name)
            if os.path.isfile(path) and (
                name == MANIFEST_NAME
                or name == CONFIG_NAME
                or name.endswith((".ledger", ".state", ".result", ".tmp"))
            ):
                os.remove(path)

    # -- paths ------------------------------------------------------------

    def manifest_path(self) -> str:
        """Path of the ``checkpoint.json`` manifest."""
        return os.path.join(self.directory, MANIFEST_NAME)

    def ledger_path(self, role: str) -> str:
        """Path of *role*'s sample ledger (``<role>.ledger``)."""
        return os.path.join(self.directory, role + ".ledger")

    def state_path(self, role: str) -> str:
        """Path of *role*'s world-state blob (``<role>.state``)."""
        return os.path.join(self.directory, role + ".state")

    def result_path(self, role: str) -> str:
        """Path of *role*'s finished-result blob (``<role>.result``)."""
        return os.path.join(self.directory, role + ".result")

    # -- manifest bookkeeping ---------------------------------------------

    def _write_manifest(self) -> None:
        atomic_write_json(
            self.manifest_path(), self.manifest,
            indent=2, sort_keys=True, trailing_newline=True,
        )

    def record_run(self, info: Dict) -> None:
        """Append one run's resume counters to the manifest."""
        entry = dict(info)
        entry["started_unix"] = int(time.time())
        self.manifest.setdefault("runs", []).append(entry)
        self._write_manifest()

    def mark_complete(self) -> None:
        """Flip the manifest status to ``complete`` (atomic rewrite)."""
        self.manifest["status"] = "complete"
        self._write_manifest()

    def add_lineage(self, entry: Dict) -> None:
        """Append one extension's provenance to the manifest lineage."""
        self.manifest.setdefault("lineage", []).append(dict(entry))
        self._write_manifest()

    # -- unit handles ------------------------------------------------------

    def measure_checkpoint(self, role: str,
                           interval: int = 1) -> "MeasureCheckpoint":
        """A journal handle for one unit of measurement (see
        :class:`MeasureCheckpoint`); *interval* batches per state
        commit."""
        return MeasureCheckpoint(
            self.directory, role, self.fingerprint, interval=interval
        )

    # -- unit results (shards / Atlas) ------------------------------------

    def store_result(self, role: str, result) -> None:
        """Persist a completed unit's final result (atomic)."""
        atomic_write_bytes(
            self.result_path(role),
            pickle.dumps(
                {"fingerprint": self.fingerprint, "role": role,
                 "result": result},
                protocol=pickle.HIGHEST_PROTOCOL,
            ),
        )

    def load_result(self, role: str):
        """A completed unit's result, or ``None`` if absent/unusable."""
        return load_unit_result(
            self.result_path(role), self.fingerprint, role
        )


def load_unit_result(path: str, fingerprint: str, role: str):
    """Load a ``<role>.result`` blob; ``None`` when absent or stale."""
    try:
        with open(path, "rb") as handle:
            blob = pickle.load(handle)
    except FileNotFoundError:
        return None
    except Exception:
        return None  # torn/corrupt blob: treat as absent, re-measure
    if blob.get("fingerprint") != fingerprint or blob.get("role") != role:
        return None
    return blob["result"]


def store_unit_result(path: str, fingerprint: str, role: str,
                      result) -> None:
    """Worker-side counterpart of :meth:`CampaignCheckpoint.store_result`
    (workers know only paths, never the manifest)."""
    atomic_write_bytes(
        path,
        pickle.dumps(
            {"fingerprint": fingerprint, "role": role, "result": result},
            protocol=pickle.HIGHEST_PROTOCOL,
        ),
    )


class MeasureCheckpoint:
    """Journal + state blob for one resumable measurement loop.

    Constructed from plain path components so worker processes can
    build one from a pickled task spec without touching the manifest.
    """

    def __init__(self, directory: str, role: str, fingerprint: str,
                 interval: int = 1) -> None:
        if interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.directory = directory
        self.role = role
        self.fingerprint = fingerprint
        self.interval = interval
        self.ledger_path = os.path.join(directory, role + ".ledger")
        self.state_path = os.path.join(directory, role + ".state")
        self._writer: Optional[LedgerWriter] = None
        # Batches measured since the last ledger commit (interval > 1).
        self._pending: List[Dict] = []
        self._pending_through = -1
        self._batches_committed = 0
        self._next_seq = 0
        self._complete = False
        #: Batches replayed from the ledger by the last :meth:`prepare`
        #: (resume bookkeeping, surfaced in the campaign manifest).
        self.resumed_batches = 0

    # -- resume ------------------------------------------------------------

    def prepare(self, campaign) -> ResumeInfo:
        """Replay the ledger, restore state into *campaign*, and open
        the journal for appending.  Returns what was replayed."""
        load = read_ledger(self.ledger_path)
        info = ResumeInfo()
        fresh = load is None or not load.records
        if fresh and load is not None:
            # A file holding only a torn header: reset it entirely.
            LedgerReader.truncate_to(self.ledger_path, 0)
        if not fresh:
            info = self._reconcile(load, campaign)
        self._writer = LedgerWriter(
            self.ledger_path,
            next_seq=0 if fresh else self._next_seq,
        )
        if fresh:
            self._writer.append(
                "header",
                {
                    "fingerprint": self.fingerprint,
                    "role": self.role,
                    "format": FORMAT_VERSION,
                },
            )
        self._batches_committed = info.batches_done
        self.resumed_batches = info.batches_done
        return info

    def _reconcile(self, load, campaign) -> ResumeInfo:
        header = load.header
        if header is None:
            raise CheckpointCorruptionError(
                "{}: journal has no header record".format(self.ledger_path)
            )
        payload = header.payload
        if payload.get("fingerprint") != self.fingerprint or (
            payload.get("role") != self.role
        ):
            raise CheckpointMismatchError(
                "{}: journal belongs to a different campaign or unit "
                "(stored fingerprint {}, expected {})".format(
                    self.ledger_path,
                    payload.get("fingerprint"),
                    self.fingerprint,
                )
            )
        if payload.get("format") != FORMAT_VERSION:
            raise CheckpointMismatchError(
                "{}: unsupported ledger format {!r}".format(
                    self.ledger_path, payload.get("format")
                )
            )

        state = self._load_state()
        state_batches = 0 if state is None else state["batches_done"]

        batch_records = [r for r in load.records if r.kind == "batch"]
        done_marker = any(r.kind == "done" for r in load.records)

        # Keep the longest prefix both the journal and the state blob
        # agree on; everything past it is a torn commit (at most one
        # batch interval, lost in the crash) and gets truncated away.
        kept = []
        keep_batches = 0
        for record in batch_records:
            through = record.payload["through"]
            if through + 1 > state_batches:
                break
            kept.append(record)
            keep_batches = through + 1
        complete = (
            done_marker and state is not None and kept == batch_records
        )
        keep_records = 1 + len(kept) + (1 if complete else 0)
        truncate_to = load.offsets[keep_records - 1]
        if truncate_to < load.clean_bytes or load.dropped_tail:
            LedgerReader.truncate_to(self.ledger_path, truncate_to)
        self._next_seq = keep_records
        self._complete = complete

        if keep_batches == 0:
            # Journal present but nothing usable (state blob lost):
            # start over from scratch — always byte-safe.
            return ResumeInfo()

        info = ResumeInfo(batches_done=keep_batches, complete=complete)
        for record in kept:
            info.doh.extend(
                codecs.doh_from_json(item) for item in record.payload["doh"]
            )
            info.do53.extend(
                codecs.do53_from_json(item)
                for item in record.payload["do53"]
            )
            info.failures.extend(
                codecs.failure_from_json(item)
                for item in record.payload["fail"]
            )
        self._restore(campaign, state)
        return info

    def _load_state(self) -> Optional[Dict]:
        try:
            with open(self.state_path, "rb") as handle:
                blob = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            return None  # torn state blob: fall back to the journal
        if blob.get("fingerprint") != self.fingerprint:
            return None
        return blob

    def _restore(self, campaign, state: Dict) -> None:
        restore_world_state(campaign.world, state["world"])
        saved = state["campaign"]
        campaign.client.rng.setstate(_rng_tuple(saved["client_rng"]))
        campaign.client._uuid_counter = saved["uuid_counter"]
        if campaign.obs is not None:
            if saved.get("metrics") is not None:
                campaign.obs.metrics.merge_snapshot(saved["metrics"])
            if saved.get("traces") is not None:
                campaign.obs.trace.merge_snapshot(saved["traces"])

    # -- commit ------------------------------------------------------------

    def commit_batch(self, campaign, batch_index: int,
                     doh: List[DohRaw], do53: List[Do53Raw],
                     failures: List[NodeFailure],
                     force: bool = False) -> None:
        """Buffer one measured batch; journal + snapshot state every
        ``interval`` batches (or when *force* flushes the tail)."""
        self._pending.append(
            {
                "doh": [codecs.doh_to_json(raw) for raw in doh],
                "do53": [codecs.do53_to_json(raw) for raw in do53],
                "fail": [codecs.failure_to_json(f) for f in failures],
            }
        )
        self._pending_through = batch_index
        if len(self._pending) >= self.interval or force:
            self._flush(campaign)

    def _flush(self, campaign) -> None:
        if not self._pending:
            return
        payload = {
            "through": self._pending_through,
            "batches": len(self._pending),
            "doh": [item for p in self._pending for item in p["doh"]],
            "do53": [item for p in self._pending for item in p["do53"]],
            "fail": [item for p in self._pending for item in p["fail"]],
        }
        self._writer.append("batch", payload)
        self._pending = []
        self._batches_committed = self._pending_through + 1
        self._write_state(campaign)

    def _write_state(self, campaign) -> None:
        obs = campaign.obs
        state = {
            "fingerprint": self.fingerprint,
            "batches_done": self._batches_committed,
            "world": capture_world_state(campaign.world),
            "campaign": {
                "client_rng": campaign.client.rng.getstate(),
                "uuid_counter": campaign.client._uuid_counter,
                "metrics": (
                    obs.metrics.snapshot() if obs is not None else None
                ),
                "traces": (
                    obs.trace.snapshot() if obs is not None else None
                ),
            },
        }
        atomic_write_bytes(
            self.state_path,
            pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def finish(self, campaign) -> None:
        """Flush any buffered batches and mark the unit complete."""
        if self._complete:
            return  # replayed a finished journal; the marker is there
        self._flush(campaign)
        self._writer.append("done", {"batches": self._batches_committed})
        self._complete = True

    def close(self) -> None:
        """Release the ledger file handle (safe to call twice)."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None


def _rng_tuple(saved):
    kind, internal, gauss = saved
    return (kind, tuple(internal), gauss)

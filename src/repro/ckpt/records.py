"""JSON codecs for the raw records the sample ledger journals.

Samples are stored as compact positional arrays, keyed — like the
measurement itself — by ``(node_id, provider, run_index)``.  Floats
round-trip exactly through :mod:`json` (Python serialises the shortest
repr that parses back to the same IEEE double), which is what lets a
replayed ledger reproduce dataset bytes bit for bit.
"""

from __future__ import annotations

from typing import List

from repro.core.campaign import NodeFailure
from repro.core.timeline import Do53Raw, DohRaw
from repro.proxy.headers import TimelineHeaders

__all__ = [
    "do53_from_json",
    "do53_to_json",
    "doh_from_json",
    "doh_to_json",
    "failure_from_json",
    "failure_to_json",
]


def _headers_to_json(headers: TimelineHeaders) -> List:
    # Key/value PAIR LISTS, not objects: the ledger writer canonicalises
    # records with sort_keys, which would silently reorder a nested dict.
    # Header dicts are summed downstream (``brightdata_ms``) and float
    # addition is not associative, so insertion order must survive the
    # round trip for replayed records to rebuild dataset bytes exactly.
    return [
        [[key, value] for key, value in headers.tun.items()],
        [[key, value] for key, value in headers.box.items()],
    ]


def _headers_from_json(data: List) -> TimelineHeaders:
    tun, box = data
    return TimelineHeaders(
        tun={key: value for key, value in tun},
        box={key: value for key, value in box},
    )


def doh_to_json(raw: DohRaw) -> List:
    """Serialise one raw DoH measurement as a positional array."""
    return [
        raw.node_id,
        raw.exit_ip,
        raw.claimed_country,
        raw.provider,
        raw.qname,
        raw.t_a,
        raw.t_b,
        raw.t_c,
        raw.t_d,
        _headers_to_json(raw.headers),
        raw.tls_version,
        raw.run_index,
        raw.success,
        raw.error,
    ]


def doh_from_json(data: List) -> DohRaw:
    """Rebuild the :class:`DohRaw` a :func:`doh_to_json` array encodes."""
    return DohRaw(
        node_id=data[0],
        exit_ip=data[1],
        claimed_country=data[2],
        provider=data[3],
        qname=data[4],
        t_a=data[5],
        t_b=data[6],
        t_c=data[7],
        t_d=data[8],
        headers=_headers_from_json(data[9]),
        tls_version=data[10],
        run_index=data[11],
        success=data[12],
        error=data[13],
    )


def do53_to_json(raw: Do53Raw) -> List:
    """Serialise one raw Do53 measurement as a positional array."""
    return [
        raw.node_id,
        raw.exit_ip,
        raw.claimed_country,
        raw.qname,
        raw.dns_ms,
        _headers_to_json(raw.headers),
        raw.resolved_at,
        raw.run_index,
        raw.success,
        raw.error,
    ]


def do53_from_json(data: List) -> Do53Raw:
    """Rebuild the :class:`Do53Raw` a :func:`do53_to_json` array encodes."""
    return Do53Raw(
        node_id=data[0],
        exit_ip=data[1],
        claimed_country=data[2],
        qname=data[3],
        dns_ms=data[4],
        headers=_headers_from_json(data[5]),
        resolved_at=data[6],
        run_index=data[7],
        success=data[8],
        error=data[9],
    )


def failure_to_json(failure: NodeFailure) -> List:
    """Serialise one :class:`NodeFailure` as a positional array."""
    return [failure.node_id, failure.error, failure.attempts]


def failure_from_json(data: List) -> NodeFailure:
    """Rebuild the :class:`NodeFailure` a :func:`failure_to_json` array
    encodes."""
    return NodeFailure(node_id=data[0], error=data[1], attempts=data[2])

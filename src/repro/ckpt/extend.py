"""Incremental campaigns: grow a finished checkpoint, not re-run it.

Follow-up questions — "add a fifth provider", "double the runs per
client", "grow the fleet" — should reuse the weeks of samples a base
campaign already paid for.  An *extension* measures only the delta:

* ``providers`` — the new providers, across the whole base fleet
  (Do53 is skipped: the base already measured it per run),
* ``runs`` — extra runs per client, recorded with ``run_index``
  shifted past the base campaign's runs,
* ``nodes`` — a larger fleet scale, measuring only the node ids the
  base fleet did not contain.

Each extension is itself a full checkpointed campaign in a nested
``ext-<id>/`` directory (crash-safe, resumable, cached), where
``<id>`` is derived from the extension's own fingerprint — re-running
the same ``extend`` command adopts the existing delta instead of
re-measuring it, and the resume counters in the manifests prove it.

Delta semantics: the delta world is built from the *extended* config,
so its conditions are not those of a counterfactual joint run — just
as a real follow-up measurement happens later, under new network
conditions.  What is guaranteed is determinism: the same ``extend``
invocation against the same base always produces the same delta
samples and the same merged dataset bytes
(:meth:`repro.dataset.store.Dataset.merge` appends delta records after
the untouched base records).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ckpt.checkpoint import CampaignCheckpoint, CheckpointError
from repro.ckpt.fingerprint import campaign_fingerprint
from repro.core.campaign import Campaign, NodeFailure
from repro.core.config import ReproConfig
from repro.core.plan import WorldPlan
from repro.core.validation import filter_mismatched
from repro.core.world import build_world
from repro.dataset.builder import DatasetBuilder
from repro.dataset.store import Dataset
from repro.geo.geolocate import GeolocationService

__all__ = [
    "ExtendResult",
    "ExtensionPlan",
    "extend_campaign",
    "plan_extension",
]


@dataclass(frozen=True)
class ExtensionPlan:
    """One validated extension axis and the config it extends to."""

    kind: str  # "providers" | "runs" | "nodes"
    base_config: ReproConfig
    #: The extended config the delta world is built from.
    config: ReproConfig
    #: ``providers`` kind only: the providers being added.
    providers: Tuple[str, ...] = ()
    #: ``runs`` kind only: shift so delta run indices follow the base's.
    run_index_offset: int = 0
    #: Provider deltas skip Do53 (the base measured it per run).
    include_do53: bool = True


def plan_extension(
    base_config: ReproConfig,
    providers: Sequence[str] = (),
    extra_runs: int = 0,
    scale: Optional[float] = None,
) -> ExtensionPlan:
    """Validate one extension axis against *base_config*.

    Exactly one of *providers*, *extra_runs*, *scale* must be given;
    an extension is one delta with one clear merge rule, so growing
    two axes means two ``extend`` invocations.
    """
    axes = sum((len(providers) > 0, extra_runs > 0, scale is not None))
    if axes != 1:
        raise ValueError(
            "exactly one extension axis required: --provider, "
            "--extra-runs, or --scale"
        )
    if providers:
        from repro.doh.provider import PROVIDER_CONFIGS

        new = tuple(providers)
        unknown = sorted(set(new) - set(PROVIDER_CONFIGS))
        if unknown:
            raise ValueError(
                "unknown provider(s) {}; available: {}".format(
                    unknown, sorted(PROVIDER_CONFIGS)
                )
            )
        already = sorted(set(new) & set(base_config.providers))
        if already:
            raise ValueError(
                "provider(s) {} are already in the base campaign".format(
                    already
                )
            )
        if len(set(new)) != len(new):
            raise ValueError("duplicate providers in extension")
        return ExtensionPlan(
            kind="providers",
            base_config=base_config,
            config=replace(
                base_config, providers=base_config.providers + new
            ),
            providers=new,
            include_do53=False,
        )
    if extra_runs > 0:
        return ExtensionPlan(
            kind="runs",
            base_config=base_config,
            config=replace(base_config, runs_per_client=extra_runs),
            run_index_offset=base_config.runs_per_client,
        )
    if scale <= base_config.population.scale:
        raise ValueError(
            "extension scale {} must exceed the base scale {}".format(
                scale, base_config.population.scale
            )
        )
    return ExtensionPlan(
        kind="nodes",
        base_config=base_config,
        config=replace(
            base_config,
            population=replace(base_config.population, scale=scale),
        ),
    )


@dataclass
class ExtendResult:
    """A merged dataset plus the delta's provenance."""

    dataset: Dataset
    directory: str
    extension_id: str
    kind: str
    #: The extended config (base config grown along the delta axis).
    config: Optional[ReproConfig] = None
    #: Delta batches replayed from the extension's own ledger vs
    #: measured live by this invocation (0 measured = pure cache hit).
    batches_replayed: int = 0
    batches_measured: int = 0
    doh_added: int = 0
    do53_added: int = 0
    clients_added: int = 0
    failures: List[NodeFailure] = field(default_factory=list)


def fleet_node_ids(config: ReproConfig) -> Set[str]:
    """Every exit-node id *config*'s world would build.

    Node ids are ``<country>-<index>`` with per-country counts fixed by
    the deterministic :class:`WorldPlan` fit, so the fleet is knowable
    without building a world.
    """
    counts = WorldPlan.for_config(config).counts
    return {
        "{}-{:04d}".format(code, index)
        for code, count in counts.items()
        for index in range(count)
    }


def _delta_client_seed(config: ReproConfig, fingerprint: str) -> int:
    """A client-stream seed disjoint from every base stream.

    Base streams sit near the world seed (serial ``seed+1``, shard k
    ``seed+1+k``, Atlas ``seed+1+num_shards``); the delta stream is
    pushed far past them and keyed on the extension fingerprint so
    distinct extensions of one base never share query names.
    """
    return config.seed + 100003 + int(fingerprint[:8], 16) % 899989


def extend_campaign(
    base_dir: str,
    dataset: Dataset,
    providers: Sequence[str] = (),
    extra_runs: int = 0,
    scale: Optional[float] = None,
    resume: str = "auto",
    progress=None,
) -> ExtendResult:
    """Grow *dataset* (produced by the checkpoint at *base_dir*) along
    one extension axis; returns the merged dataset plus provenance.

    The delta is measured under a nested checkpoint
    (``<base_dir>/ext-<id>/``) and cached as a ``delta.result`` blob:
    re-invoking the same extension replays it without measuring
    anything, which the returned (and manifest-recorded) resume
    counters make verifiable.  *resume* follows the usual contract —
    ``"auto"`` (default) adopts an interrupted or finished delta,
    ``"force"`` discards and re-measures it.
    """
    base = CampaignCheckpoint.load(base_dir)
    if base.manifest.get("status") != "complete":
        raise CheckpointError(
            "cannot extend checkpoint {!r}: the base campaign is "
            "{!r}; resume it to completion first".format(
                base_dir, base.manifest.get("status")
            )
        )
    plan = plan_extension(
        base.stored_config(), providers=providers,
        extra_runs=extra_runs, scale=scale,
    )
    execution = {
        "mode": "extend",
        "kind": plan.kind,
        "base_fingerprint": base.fingerprint,
        "providers": list(plan.providers),
        "run_index_offset": plan.run_index_offset,
        "include_do53": plan.include_do53,
    }
    fingerprint = campaign_fingerprint(plan.config, execution)
    extension_id = fingerprint[:12]
    ext_dir = os.path.join(base.directory, "ext-{}".format(extension_id))
    if resume == "never":
        # Extensions are idempotent by construction; "never" would make
        # every re-invocation (including the pure cache hit) an error.
        resume = "auto"
    ext = CampaignCheckpoint.open(
        ext_dir, plan.config, execution=execution, resume=resume
    )

    delta = ext.load_result("delta")
    if delta is None:
        delta, replayed, measured = _measure_delta(plan, ext, progress)
        ext.store_result("delta", delta)
    else:
        replayed, measured = delta["num_batches"], 0
    ext.record_run(
        {
            "units": [
                {
                    "role": "delta",
                    "batches_replayed": replayed,
                    "batches_measured": measured,
                }
            ]
        }
    )
    ext.mark_complete()

    delta_dataset = _build_delta_dataset(plan, delta)
    merged = dataset.merge(delta_dataset)
    entry = {
        "extension": extension_id,
        "fingerprint": fingerprint,
        "kind": plan.kind,
        "providers": list(plan.providers),
        "extra_runs": extra_runs,
        "scale": scale,
        "batches_replayed": replayed,
        "batches_measured": measured,
        "doh_added": len(delta_dataset.doh),
        "do53_added": len(delta_dataset.do53),
        "clients_added": len(merged.clients) - len(dataset.clients),
    }
    base.add_lineage(entry)
    return ExtendResult(
        dataset=merged,
        directory=ext_dir,
        extension_id=extension_id,
        kind=plan.kind,
        config=plan.config,
        batches_replayed=replayed,
        batches_measured=measured,
        doh_added=entry["doh_added"],
        do53_added=entry["do53_added"],
        clients_added=entry["clients_added"],
        failures=list(delta["failures"]),
    )


def _measure_delta(
    plan: ExtensionPlan, ext: CampaignCheckpoint, progress
) -> Tuple[Dict, int, int]:
    """Run the delta campaign under *ext*'s ledger; returns the plain-
    data delta blob plus (replayed, measured) batch counters."""
    world = build_world(plan.config)
    campaign = Campaign(
        world,
        atlas_probes_per_country=0,
        client_seed=_delta_client_seed(plan.config, ext.fingerprint),
        client_name_tag="x{}-".format(ext.fingerprint[:6]),
        provider_filter=list(plan.providers) or None,
        run_index_offset=plan.run_index_offset,
        include_do53=plan.include_do53,
    )
    nodes = world.nodes()
    if plan.kind == "nodes":
        base_ids = fleet_node_ids(plan.base_config)
        nodes = [node for node in nodes if node.node_id not in base_ids]
    checkpoint = ext.measure_checkpoint("delta")
    try:
        raw_doh, raw_do53 = campaign.measure(
            nodes, progress, checkpoint=checkpoint
        )
    finally:
        checkpoint.close()
    batch_size = max(1, plan.config.batch_size)
    num_batches = (len(nodes) + batch_size - 1) // batch_size
    replayed = checkpoint.resumed_batches

    kept_doh, dropped_doh = filter_mismatched(raw_doh, world.geolocation)
    kept_do53, dropped_do53 = filter_mismatched(raw_do53, world.geolocation)
    # Canonical delta order, independent of batching or resume point.
    kept_doh.sort(key=lambda raw: (raw.node_id, raw.run_index, raw.provider))
    kept_do53.sort(key=lambda raw: (raw.node_id, raw.run_index))

    qname_map: Dict[str, str] = {}
    for entry in world.auth_server.query_log:
        qname_map.setdefault(str(entry.qname), entry.src_ip)

    measured_ids = {raw.node_id for raw in kept_doh if raw.node_id}
    measured_ids.update(raw.node_id for raw in kept_do53 if raw.node_id)
    delta = {
        "kept_doh": kept_doh,
        "kept_do53": kept_do53,
        "dropped_doh": len(dropped_doh),
        "dropped_do53": len(dropped_do53),
        "qname_map": sorted(qname_map.items()),
        "client_entries": [
            (node.node_id, node.ip, node.claimed_country)
            for node in nodes
            if node.node_id in measured_ids
        ],
        "geo_snapshot": world.geolocation.snapshot(),
        "failures": sorted(campaign.failures, key=lambda f: f.node_id),
        "num_batches": num_batches,
    }
    return delta, replayed, num_batches - replayed


def _build_delta_dataset(plan: ExtensionPlan, delta: Dict) -> Dataset:
    """Process a raw delta blob into a mergeable :class:`Dataset`."""
    geolocation = GeolocationService.from_snapshot(
        delta["geo_snapshot"],
        error_rate=plan.config.geolocation_error_rate,
    )
    builder = DatasetBuilder(
        geolocation,
        min_clients_per_country=plan.config.population.analyzed_threshold,
    )
    builder.ingest_qname_map(delta["qname_map"])
    clients = {
        node_id: (ip, country)
        for node_id, ip, country in delta["client_entries"]
    }
    for node_id in sorted(clients):
        ip, country = clients[node_id]
        builder.add_client(node_id, ip, country)
    for raw in delta["kept_doh"]:
        builder.add_doh(raw)
    for raw in delta["kept_do53"]:
        builder.add_do53(raw)
    return builder.build()

"""Crash-safe file writes shared across the repo.

Every artefact the repo persists — datasets, manifests, traces,
benchmark reports, checkpoint segments — goes through the same
pattern: serialise into ``<path>.tmp`` in the target directory, flush
and ``fsync`` the file, then ``os.replace`` it over the destination.
POSIX guarantees the rename is atomic, so a reader (or a process
killed mid-save) only ever sees the old complete file or the new
complete file, never a truncated hybrid.
"""

from __future__ import annotations

import json
import os
from typing import Any

__all__ = ["atomic_write_bytes", "atomic_write_json", "atomic_write_text",
           "fsync_directory"]


def fsync_directory(path: str) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    Best effort: some platforms/filesystems refuse O_RDONLY directory
    fsync; losing it only weakens durability, never atomicity.
    """
    try:
        fd = os.open(path or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes, *, fsync: bool = True) -> str:
    """Atomically replace *path* with *data*; returns *path*."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        if fsync:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if fsync:
        fsync_directory(os.path.dirname(path))
    return path


def atomic_write_text(path: str, text: str, *, fsync: bool = True) -> str:
    """Atomically replace *path* with UTF-8 *text*; returns *path*."""
    return atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def atomic_write_json(
    path: str,
    obj: Any,
    *,
    indent: int = None,
    sort_keys: bool = False,
    trailing_newline: bool = False,
    fsync: bool = True,
) -> str:
    """Atomically write *obj* as JSON to *path*; returns *path*.

    The keyword knobs exist so existing artefacts keep their exact
    historical byte format (datasets are compact, manifests are
    indented + sorted + newline-terminated).
    """
    text = json.dumps(obj, indent=indent, sort_keys=sort_keys)
    if trailing_newline:
        text += "\n"
    return atomic_write_text(path, text, fsync=fsync)
